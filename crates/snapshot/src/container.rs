//! The on-disk container: header, section directory, checksums, and the
//! save/load entry points.
//!
//! Layout of format version 3 (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------------
//!      0     8  magic            "FAIRNNSS"
//!      8     4  format version   (this build reads exactly FORMAT_VERSION)
//!     12     4  byte-order mark  0x0A0B0C0D (reads back wrong if a writer
//!                                ever emitted native big-endian)
//!     16     4  kind tag         which structure the payload holds
//!     20     4  reserved         zero; room for future flags
//!     24     8  payload length   bytes following the header (incl. padding)
//!     32     8  checksum         FNV-1a 64 over the section directory
//!     40     4  section count    ≥ 1           ┐
//!     44    16  len + checksum   of section 0  │ the section directory
//!      …    16  len + checksum   of section k  ┘ (covered by the header
//!                                                 checksum above)
//!      …     …  zero padding to the next 64-byte image offset
//!   64·a  len0  section 0 payload                ┐ every section payload
//!      …     …  zero padding to a 64-byte offset │ starts 64-byte aligned;
//!   64·b  len1  section 1 payload                │ no padding after the
//!      …     …  …                                ┘ last section
//! ```
//!
//! **Why sections?** Version 1 stored one flat payload under one checksum,
//! which forces serial verification and decoding. Version 2 lets a
//! structure split its image into independently checksummed sections
//! ([`Codec::encode_sections`]) — one per shard, one per LSH table — so
//! encode, checksum and decode all run on parallel build workers. The
//! bytes are identical at every thread count (sections are concatenated in
//! a fixed order).
//!
//! **Why alignment?** Version 3 places every section payload at a 64-byte-
//! aligned image offset, and the large fixed-width columns inside sections
//! use the aligned little-endian array layout of
//! [`crate::SliceCodec`] — byte-identical to the in-memory CSR/bank
//! representations. Loading through a [`SnapshotImage`] (one aligned
//! read-to-end, [`crate::ArcBytes`]) then lets those columns *borrow* the
//! image in place: a warm engine load performs O(1) large allocations and
//! zero per-element copies. Checksums cover exactly the section payloads;
//! the padding is required to be zero (a nonzero pad byte is rejected as
//! [`SnapshotError::Corrupt`]).
//!
//! The header is fully validated before a single payload byte is decoded:
//! magic → version → byte order → kind → length → directory checksum, each
//! failure a distinct [`SnapshotError`] variant; each section's checksum is
//! verified before that section is decoded. Version bumps are deliberate
//! breaks — the format has no migration shims; a reader accepts exactly one
//! version, and files written by other versions (including v2) are rejected
//! with an upgrade hint (rebuild from raw data and re-save, or re-save with
//! the build that wrote them).

use crate::bytes::{ArcBytes, SECTION_ALIGN};
use crate::codec::{Codec, Decoder, Section};
use crate::error::SnapshotError;
use fairnn_obs::{LazyCounter, LazyHistogram, Timer};
use std::path::Path;

/// Wall time of [`save`] end to end (encode + checksum + write + rename).
static SAVE_NS: LazyHistogram = LazyHistogram::new(
    "snapshot_save_ns",
    "wall time of snapshot save (encode, checksum, write, rename) in nanoseconds",
);

/// Wall time of [`load`] end to end (read + verify + decode).
static LOAD_NS: LazyHistogram = LazyHistogram::new(
    "snapshot_load_ns",
    "wall time of snapshot load (read, verify, decode) in nanoseconds",
);

/// Total snapshot bytes written by [`save`].
static BYTES_WRITTEN: LazyCounter = LazyCounter::new(
    "snapshot_bytes_written_total",
    "total snapshot bytes written by save",
);

/// Total snapshot bytes read by [`load`].
static BYTES_READ: LazyCounter = LazyCounter::new(
    "snapshot_bytes_read_total",
    "total snapshot bytes read by load",
);

/// Per-section checksum cost, encode and verify sides both — the term the
/// sectioned format parallelises, so the distribution shows whether
/// sections are balanced.
static SECTION_CHECKSUM_NS: LazyHistogram = LazyHistogram::new(
    "snapshot_section_checksum_ns",
    "per-section FNV-1a checksum time (encode and verify) in nanoseconds",
);

/// Magic bytes at offset 0 of every snapshot.
pub const MAGIC: [u8; 8] = *b"FAIRNNSS";

/// The single format version this build writes and reads.
/// Version history: 1 = flat single-checksum payload; 2 = sectioned payload
/// with a per-section checksum directory (parallel encode/decode); 3 =
/// sections placed at 64-byte-aligned image offsets with aligned
/// little-endian array columns (zero-copy [`SnapshotImage`] loads).
pub const FORMAT_VERSION: u32 = 3;

/// Byte-order marker: written little-endian, so a conforming file always
/// reads back as this value.
pub const ENDIAN_MARK: u32 = 0x0A0B_0C0D;

/// Total header size in bytes.
pub const HEADER_LEN: usize = 40;

/// Which structure a snapshot holds. The tag is stored in the header so a
/// loader immediately rejects a file holding the wrong structure instead of
/// misinterpreting its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SnapshotKind {
    /// A bare `fairnn_lsh::LshIndex`.
    LshIndex = 1,
    /// The Section 3 `fairnn_core::FairNns` structure.
    FairNns = 2,
    /// The Section 4 `fairnn_core::FairNnis` structure.
    FairNnis = 3,
    /// The Appendix A `fairnn_core::RankSwapSampler`.
    RankSwap = 4,
    /// A single `fairnn_engine::Shard`.
    Shard = 5,
    /// A `fairnn_engine::ShardedIndex` (all shards + partition map).
    ShardedIndex = 6,
    /// A full `fairnn_engine::QueryEngine` (index + cache + batch counter).
    QueryEngine = 7,
    /// A `fairnn_engine::Checkpoint`: a WAL sequence number plus the
    /// sharded index it was cut at (the durable base the write-ahead log
    /// tail replays on top of).
    Checkpoint = 8,
}

impl SnapshotKind {
    /// The header tag value.
    pub fn tag(self) -> u32 {
        self as u32
    }
}

/// FNV-1a 64-bit hash — the payload checksum. Simple, fast, and entirely
/// deterministic across platforms; a snapshot is trusted storage, so the
/// checksum guards against truncation and bit rot, not adversaries.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Rounds `offset` up to the next [`SECTION_ALIGN`]-byte boundary, or
/// `None` on overflow (only reachable from a corrupt directory).
fn align_up(offset: usize) -> Option<usize> {
    offset
        .checked_add(SECTION_ALIGN - 1)
        .map(|v| v & !(SECTION_ALIGN - 1))
}

/// Serializes `value` into a complete snapshot byte image (header +
/// section directory + aligned section payloads). Sections are produced by
/// [`Codec::encode_sections`] and checksummed on parallel build workers;
/// the assembled image is identical at every thread count. Each section
/// payload is placed at a 64-byte-aligned image offset (zero padding,
/// excluded from the checksums); nothing follows the last section.
pub fn to_bytes<T: Codec>(kind: SnapshotKind, value: &T) -> Vec<u8> {
    image_from_sections(kind, value.encode_sections())
}

/// Assembles a complete snapshot image from already-encoded sections —
/// the tail of [`to_bytes`], exposed so incremental writers (the engine's
/// checkpointer) can reuse cached per-section bytes for sections whose
/// source structure has not changed since the last image was cut. The
/// output is byte-identical to [`to_bytes`] over a value whose
/// `encode_sections` returns `sections`.
pub fn image_from_sections(kind: SnapshotKind, sections: Vec<Vec<u8>>) -> Vec<u8> {
    assert!(
        !sections.is_empty(),
        "a snapshot needs at least one section"
    );
    let checksums = fairnn_parallel::map_indexed(sections.len(), |i| {
        let _timer = Timer::start(&SECTION_CHECKSUM_NS);
        // fairnn-audit: allow(snapshot-index) — encode side: `i` ranges over `sections.len()` by construction
        checksum64(&sections[i])
    });

    let mut directory = Vec::with_capacity(4 + sections.len() * 16);
    directory.extend_from_slice(
        &u32::try_from(sections.len())
            // fairnn-audit: allow(snapshot-panic) — encode side: >u32::MAX sections is a programming error, not snapshot input
            .expect("section count fits u32")
            .to_le_bytes(),
    );
    for (section, checksum) in sections.iter().zip(&checksums) {
        directory.extend_from_slice(&(section.len() as u64).to_le_bytes());
        directory.extend_from_slice(&checksum.to_le_bytes());
    }

    // Aligned placement: each section starts at the next 64-byte image
    // offset after the directory (or the previous section); the image ends
    // exactly where the last section does. Offsets here are absolute
    // (from the magic), which is what makes an aligned-buffer load see
    // aligned section payloads.
    let mut offsets = Vec::with_capacity(sections.len());
    let mut cursor = HEADER_LEN + directory.len();
    for section in &sections {
        // fairnn-audit: allow(snapshot-panic) — encode side: image sizes come from in-memory values, far from usize overflow
        let aligned = align_up(cursor).expect("image size fits usize");
        offsets.push(aligned);
        cursor = aligned + section.len();
    }
    let payload_len = cursor - HEADER_LEN;

    let mut out = Vec::with_capacity(cursor);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&ENDIAN_MARK.to_le_bytes());
    out.extend_from_slice(&kind.tag().to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&(payload_len as u64).to_le_bytes());
    out.extend_from_slice(&checksum64(&directory).to_le_bytes());
    out.extend_from_slice(&directory);
    for (offset, section) in offsets.iter().zip(&sections) {
        out.resize(*offset, 0); // zero padding up to the aligned offset
        out.extend_from_slice(section);
    }
    debug_assert_eq!(out.len(), cursor);
    out
}

/// A parsed-and-verified snapshot image: the kind tag plus each section's
/// absolute `(offset, len)`. Producing one runs the complete validation
/// chain — header, directory checksum, alignment/padding, exact coverage,
/// and every section checksum (in parallel) — so holders may decode
/// sections without further integrity checks.
struct ParsedImage {
    kind_tag: u32,
    sections: Vec<(usize, usize)>,
}

/// Runs the full validation chain over a snapshot byte image. When
/// `expected` is set, the kind tag is checked in the canonical header
/// order (between byte order and payload length); [`SnapshotImage`] passes
/// `None` and re-checks the tag at decode time instead.
fn parse_image(bytes: &[u8], expected: Option<SnapshotKind>) -> Result<ParsedImage, SnapshotError> {
    // Magic first, so "not a snapshot at all" is distinguished from
    // "header cut short" even on sub-header inputs.
    if let Some(magic) = bytes.get(..8) {
        if magic != MAGIC {
            let mut found = [0u8; 8];
            for (dst, src) in found.iter_mut().zip(magic) {
                *dst = *src;
            }
            return Err(SnapshotError::BadMagic { found });
        }
    }
    let (Some(header_bytes), Some(payload)) = (bytes.get(8..HEADER_LEN), bytes.get(HEADER_LEN..))
    else {
        return Err(SnapshotError::Truncated {
            needed: HEADER_LEN,
            available: bytes.len(),
        });
    };
    // The `?`s below cannot fire — the header slice is exactly 32 bytes —
    // but snapshot code never panics on input, so they stay `?`.
    let mut header = Decoder::new(header_bytes);
    let version = header.read_u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let endian = header.read_u32()?;
    if endian != ENDIAN_MARK {
        return Err(SnapshotError::EndiannessMismatch { found: endian });
    }
    let kind_tag = header.read_u32()?;
    if let Some(kind) = expected {
        if kind_tag != kind.tag() {
            return Err(SnapshotError::KindMismatch {
                found: kind_tag,
                expected: kind.tag(),
            });
        }
    }
    let _reserved = header.read_u32()?;
    let payload_len = header.read_u64()?;
    let stored_checksum = header.read_u64()?;

    let payload_len = usize::try_from(payload_len).map_err(|_| {
        SnapshotError::Corrupt(format!("payload length {payload_len} does not fit usize"))
    })?;
    let available = payload.len();
    if available < payload_len {
        return Err(SnapshotError::Truncated {
            needed: payload_len,
            available,
        });
    }
    if available > payload_len {
        return Err(SnapshotError::TrailingBytes {
            remaining: available - payload_len,
        });
    }

    // Section directory: count, then (length, checksum) per section. The
    // header checksum covers exactly these bytes, so a corrupt directory is
    // caught before any length is trusted.
    let mut dir = Decoder::new(payload);
    let count = dir.read_u32().map_err(|_| SnapshotError::Truncated {
        needed: 4,
        available: payload.len(),
    })? as usize;
    let dir_len = 4 + count
        .checked_mul(16)
        .ok_or_else(|| SnapshotError::Corrupt(format!("section count {count} overflows")))?;
    let Some(directory) = payload.get(..dir_len) else {
        return Err(SnapshotError::Corrupt(format!(
            "section directory of {count} entries needs {dir_len} bytes, payload has {}",
            payload.len()
        )));
    };
    let computed = checksum64(directory);
    if computed != stored_checksum {
        return Err(SnapshotError::ChecksumMismatch {
            stored: stored_checksum,
            computed,
        });
    }
    if count == 0 {
        return Err(SnapshotError::Corrupt(
            "a snapshot needs at least one section".into(),
        ));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let len = dir.read_u64()?;
        let checksum = dir.read_u64()?;
        let len = usize::try_from(len).map_err(|_| {
            SnapshotError::Corrupt(format!("section length {len} does not fit usize"))
        })?;
        entries.push((len, checksum));
    }

    // Aligned placement (absolute offsets, mirroring the writer), exact
    // coverage, and all-zero padding. Checked arithmetic throughout: a
    // repaired-checksum directory can carry absurd lengths.
    let mut sections = Vec::with_capacity(count);
    let mut cursor = HEADER_LEN + dir_len;
    for (len, _) in &entries {
        let aligned = align_up(cursor)
            .ok_or_else(|| SnapshotError::Corrupt("section offsets overflow".into()))?;
        sections.push((aligned, *len));
        cursor = aligned
            .checked_add(*len)
            .ok_or_else(|| SnapshotError::Corrupt("section lengths overflow".into()))?;
    }
    if cursor - HEADER_LEN != payload.len() {
        return Err(SnapshotError::Corrupt(format!(
            "sections end at image offset {cursor}, image holds {} bytes",
            HEADER_LEN + payload.len()
        )));
    }
    let mut prev_end = HEADER_LEN + dir_len;
    for (offset, len) in &sections {
        let Some(pad) = bytes.get(prev_end..*offset) else {
            return Err(SnapshotError::Corrupt(
                "section padding extends past the image".into(),
            ));
        };
        if pad.iter().any(|&b| b != 0) {
            return Err(SnapshotError::Corrupt(
                "alignment padding must be zero".into(),
            ));
        }
        prev_end = offset + len;
    }

    // Per-section integrity, verified on parallel build workers.
    let section_sums = fairnn_parallel::map_indexed(count, |i| {
        let _timer = Timer::start(&SECTION_CHECKSUM_NS);
        // fairnn-audit: allow(snapshot-index) — `i` ranges over `count == sections.len()` by construction
        let (offset, len) = sections[i];
        let section = bytes.get(offset..offset + len).unwrap_or(&[]);
        checksum64(section)
    });
    for (computed, (_, stored)) in section_sums.iter().zip(&entries) {
        if computed != stored {
            return Err(SnapshotError::ChecksumMismatch {
                stored: *stored,
                computed: *computed,
            });
        }
    }

    Ok(ParsedImage { kind_tag, sections })
}

/// Parses a snapshot byte image produced by [`to_bytes`], validating the
/// full header chain and the section directory before decoding; section
/// checksums are verified (in parallel) before the sections reach
/// [`Codec::decode_sections`]. Decoding from a plain slice always copies;
/// use a [`SnapshotImage`] for the zero-copy path.
pub fn from_bytes<T: Codec>(kind: SnapshotKind, bytes: &[u8]) -> Result<T, SnapshotError> {
    let image = parse_image(bytes, Some(kind))?;
    let mut sections = Vec::with_capacity(image.sections.len());
    for (offset, len) in &image.sections {
        // In-bounds by the coverage checks in `parse_image`; `get` keeps
        // the no-panic guarantee even if those ever regress.
        let slice = offset
            .checked_add(*len)
            .and_then(|end| bytes.get(*offset..end));
        let Some(slice) = slice else {
            return Err(SnapshotError::Corrupt(
                "section extends past the payload".into(),
            ));
        };
        sections.push(Section::new(slice));
    }
    T::decode_sections(&sections)
}

/// A fully verified snapshot held in one 64-byte-aligned allocation — the
/// zero-copy load path.
///
/// [`SnapshotImage::open`] performs a single read-to-end into an
/// [`ArcBytes`] buffer and validates everything up front (header chain,
/// directory checksum, alignment padding, every section checksum).
/// [`SnapshotImage::decode`] then hands the structural decoders sections
/// that *carry the buffer*, so every [`crate::SliceCodec`] column in the
/// value borrows the image in place: O(1) large allocations, zero
/// per-element copies, and any number of decoded structures share the one
/// buffer until the last of them drops.
pub struct SnapshotImage {
    bytes: ArcBytes,
    kind_tag: u32,
    sections: Vec<(usize, usize)>,
}

impl SnapshotImage {
    /// Reads and fully verifies the snapshot file at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let bytes = ArcBytes::read_file(path.as_ref())?;
        BYTES_READ.add(bytes.len() as u64);
        Self::from_arc_bytes(bytes)
    }

    /// Verifies an already-loaded aligned buffer as a snapshot image.
    pub fn from_arc_bytes(bytes: ArcBytes) -> Result<Self, SnapshotError> {
        let parsed = parse_image(bytes.as_slice(), None)?;
        Ok(Self {
            bytes,
            kind_tag: parsed.kind_tag,
            sections: parsed.sections,
        })
    }

    /// The header's structure tag (compare with [`SnapshotKind::tag`]).
    pub fn kind_tag(&self) -> u32 {
        self.kind_tag
    }

    /// Total image size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the image holds zero bytes (never true for a verified
    /// image, which has at least a header).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The backing buffer.
    pub fn as_bytes(&self) -> &ArcBytes {
        &self.bytes
    }

    /// Decodes the image as a `T`, borrowing fixed-width columns from the
    /// backing buffer. Integrity was verified at construction; only the
    /// kind tag and structural invariants are checked here.
    pub fn decode<T: Codec>(&self, kind: SnapshotKind) -> Result<T, SnapshotError> {
        if self.kind_tag != kind.tag() {
            return Err(SnapshotError::KindMismatch {
                found: self.kind_tag,
                expected: kind.tag(),
            });
        }
        let mut sections = Vec::with_capacity(self.sections.len());
        for (offset, len) in &self.sections {
            let slice = offset
                .checked_add(*len)
                .and_then(|end| self.bytes.as_slice().get(*offset..end));
            let Some(slice) = slice else {
                return Err(SnapshotError::Corrupt(
                    "section extends past the payload".into(),
                ));
            };
            sections.push(Section::with_owner(slice, &self.bytes, *offset));
        }
        T::decode_sections(&sections)
    }
}

impl std::fmt::Debug for SnapshotImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotImage")
            .field("kind_tag", &self.kind_tag)
            .field("bytes", &self.bytes.len())
            .field("sections", &self.sections.len())
            .finish()
    }
}

/// Recomputes every checksum of a snapshot image in place — each section's
/// directory entry, then the header checksum over the directory. Tooling
/// and corruption tests use this to push a payload mutation *past* the
/// checksum wall so it reaches the structural decoders; it is best-effort
/// on malformed images (out-of-range lengths leave the image untouched).
pub fn repair_checksums(bytes: &mut [u8]) {
    let Some(count) = read_le_array::<4>(bytes, HEADER_LEN).map(u32::from_le_bytes) else {
        return;
    };
    let count = count as usize;
    let Some(dir_len) = count.checked_mul(16).and_then(|n| n.checked_add(4)) else {
        return;
    };
    if dir_len > bytes.len() - HEADER_LEN {
        return;
    }
    let mut offset = HEADER_LEN + dir_len;
    for i in 0..count {
        // Sections sit at aligned image offsets (v3); mirror the writer.
        let Some(aligned) = align_up(offset) else {
            return;
        };
        let entry = HEADER_LEN + 4 + i * 16;
        let Some(len) = read_le_array::<8>(bytes, entry).map(u64::from_le_bytes) else {
            return;
        };
        let Some(end) = aligned.checked_add(len as usize) else {
            return;
        };
        let Some(section) = bytes.get(aligned..end) else {
            return;
        };
        let checksum = checksum64(section).to_le_bytes();
        let Some(slot) = bytes.get_mut(entry + 8..entry + 16) else {
            return;
        };
        slot.copy_from_slice(&checksum);
        offset = end;
    }
    let Some(directory) = bytes.get(HEADER_LEN..HEADER_LEN + dir_len) else {
        return;
    };
    let checksum = checksum64(directory).to_le_bytes();
    if let Some(slot) = bytes.get_mut(32..40) {
        slot.copy_from_slice(&checksum);
    }
}

/// Reads `N` bytes at `at` as a fixed array, without indexing (`None` when
/// the slice is short or the range overflows).
fn read_le_array<const N: usize>(bytes: &[u8], at: usize) -> Option<[u8; N]> {
    let slice = bytes.get(at..at.checked_add(N)?)?;
    let mut out = [0u8; N];
    for (dst, src) in out.iter_mut().zip(slice) {
        *dst = *src;
    }
    Some(out)
}

/// Writes `value` as a snapshot file at `path` (atomically replaced via a
/// sibling temporary file, so readers never observe a half-written
/// snapshot).
pub fn save<T: Codec, P: AsRef<Path>>(
    kind: SnapshotKind,
    value: &T,
    path: P,
) -> Result<(), SnapshotError> {
    let _timer = Timer::start(&SAVE_NS);
    let bytes = to_bytes(kind, value);
    save_image(&bytes, path)
}

/// Atomically writes an already-assembled snapshot image (from
/// [`to_bytes`] or [`image_from_sections`]) to `path` — the write+rename
/// tail of [`save`], exposed for incremental writers that assemble their
/// own images.
pub fn save_image<P: AsRef<Path>>(bytes: &[u8], path: P) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    BYTES_WRITTEN.add(bytes.len() as u64);
    // The temp name appends to the *full* file name (never replaces an
    // extension — sibling snapshots sharing a stem must not collide) and
    // carries the pid so concurrent saves from different processes do not
    // race on one temp file.
    let file_name = path.file_name().ok_or_else(|| {
        SnapshotError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("snapshot path {} has no file name", path.display()),
        ))
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a snapshot file written by [`save`], through the zero-copy
/// [`SnapshotImage`] path: one aligned read-to-end, up-front verification,
/// and in-place column borrows for [`crate::SliceCodec`] data.
pub fn load<T: Codec, P: AsRef<Path>>(kind: SnapshotKind, path: P) -> Result<T, SnapshotError> {
    let _timer = Timer::start(&LOAD_NS);
    let image = SnapshotImage::open(path)?;
    image.decode(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Encoder;

    #[test]
    fn image_roundtrip() {
        let value = vec![3u64, 1, 4, 1, 5];
        let bytes = to_bytes(SnapshotKind::LshIndex, &value);
        assert_eq!(&bytes[..8], &MAGIC);
        let back: Vec<u64> = from_bytes(SnapshotKind::LshIndex, &bytes).unwrap();
        assert_eq!(back, value);
        // Canonical: re-encoding the decoded value is byte-identical.
        assert_eq!(to_bytes(SnapshotKind::LshIndex, &back), bytes);
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = to_bytes(SnapshotKind::LshIndex, &7u64);
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes::<u64>(SnapshotKind::LshIndex, &bytes),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn bumped_version_rejected() {
        let mut bytes = to_bytes(SnapshotKind::LshIndex, &7u64);
        bytes[8] = FORMAT_VERSION as u8 + 1;
        assert!(matches!(
            from_bytes::<u64>(SnapshotKind::LshIndex, &bytes),
            Err(SnapshotError::UnsupportedVersion { found, supported })
                if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
        ));
    }

    #[test]
    fn flipped_endian_mark_rejected() {
        let mut bytes = to_bytes(SnapshotKind::LshIndex, &7u64);
        bytes[12..16].reverse(); // what a native big-endian writer would emit
        assert!(matches!(
            from_bytes::<u64>(SnapshotKind::LshIndex, &bytes),
            Err(SnapshotError::EndiannessMismatch { .. })
        ));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let bytes = to_bytes(SnapshotKind::FairNns, &7u64);
        assert!(matches!(
            from_bytes::<u64>(SnapshotKind::QueryEngine, &bytes),
            Err(SnapshotError::KindMismatch { found, expected })
                if found == SnapshotKind::FairNns.tag()
                    && expected == SnapshotKind::QueryEngine.tag()
        ));
    }

    #[test]
    fn payload_corruption_caught_by_checksum() {
        let mut bytes = to_bytes(SnapshotKind::LshIndex, &vec![1u64, 2, 3]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let bytes = to_bytes(SnapshotKind::LshIndex, &vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let err = from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &bytes[..cut])
                .expect_err("truncated snapshot must not load");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::BadMagic { .. }
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn appended_garbage_detected() {
        let mut bytes = to_bytes(SnapshotKind::LshIndex, &7u64);
        bytes.push(0);
        assert!(matches!(
            from_bytes::<u64>(SnapshotKind::LshIndex, &bytes),
            Err(SnapshotError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let path =
            std::env::temp_dir().join(format!("fairnn-snapshot-test-{}.snap", std::process::id()));
        save(SnapshotKind::Shard, &vec![9u64, 8, 7], &path).unwrap();
        let back: Vec<u64> = load(SnapshotKind::Shard, &path).unwrap();
        assert_eq!(back, vec![9, 8, 7]);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            load::<Vec<u64>, _>(SnapshotKind::Shard, &path),
            Err(SnapshotError::Io(_))
        ));
    }

    /// A two-section test type: exercises the sectioned encode/decode path
    /// the way the sharded structures use it.
    #[derive(Debug, PartialEq)]
    struct TwoPart {
        head: Vec<u64>,
        tail: Vec<u64>,
    }

    impl Codec for TwoPart {
        fn encode(&self, enc: &mut Encoder) {
            self.head.encode(enc);
            self.tail.encode(enc);
        }
        fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
            Ok(Self {
                head: Vec::decode(dec)?,
                tail: Vec::decode(dec)?,
            })
        }
        fn encode_sections(&self) -> Vec<Vec<u8>> {
            let mut head = Encoder::new();
            self.head.encode(&mut head);
            let mut tail = Encoder::new();
            self.tail.encode(&mut tail);
            vec![head.into_bytes(), tail.into_bytes()]
        }
        fn decode_sections(sections: &[Section<'_>]) -> Result<Self, SnapshotError> {
            let [head, tail] = sections else {
                return Err(SnapshotError::Corrupt(format!(
                    "expected 2 sections, found {}",
                    sections.len()
                )));
            };
            let mut head_dec = head.decoder();
            let mut tail_dec = tail.decoder();
            let out = Self {
                head: Vec::decode(&mut head_dec)?,
                tail: Vec::decode(&mut tail_dec)?,
            };
            head_dec.finish()?;
            tail_dec.finish()?;
            Ok(out)
        }
    }

    #[test]
    fn multi_section_images_roundtrip_and_stay_canonical() {
        let value = TwoPart {
            head: vec![1, 2, 3],
            tail: vec![9, 8],
        };
        let bytes = to_bytes(SnapshotKind::Shard, &value);
        let back: TwoPart = from_bytes(SnapshotKind::Shard, &bytes).unwrap();
        assert_eq!(back, value);
        assert_eq!(to_bytes(SnapshotKind::Shard, &back), bytes);
        // 2 sections in the directory.
        assert_eq!(
            u32::from_le_bytes(bytes[HEADER_LEN..HEADER_LEN + 4].try_into().unwrap()),
            2
        );
        // Corrupting either section trips its own checksum: the first byte
        // of section 0 (at the first aligned offset after the directory)
        // and the last byte of section 1 (the final image byte — v3 never
        // pads after the last section).
        let section0 = align_up(HEADER_LEN + 4 + 2 * 16).unwrap();
        for offset in [section0, bytes.len() - 1] {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= 0x01;
            assert!(matches!(
                from_bytes::<TwoPart>(SnapshotKind::Shard, &corrupt),
                Err(SnapshotError::ChecksumMismatch { .. })
            ));
        }
    }

    #[test]
    fn directory_corruption_is_caught_before_lengths_are_trusted() {
        let bytes = to_bytes(SnapshotKind::LshIndex, &vec![5u64; 8]);
        // Flip a byte of a section length inside the directory: the header
        // checksum over the directory must reject it.
        let mut corrupt = bytes.clone();
        corrupt[HEADER_LEN + 4] ^= 0xFF;
        assert!(matches!(
            from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &corrupt),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn repair_checksums_lets_mutations_reach_the_decoders() {
        let bytes = to_bytes(SnapshotKind::LshIndex, &vec![7u64, 7, 7]);
        let mut mutated = bytes.clone();
        let last = mutated.len() - 1;
        mutated[last] ^= 0x10;
        // Without repair: checksum wall.
        assert!(matches!(
            from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &mutated),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // With repair: checksums pass, the (structurally valid) mutated
        // value decodes.
        repair_checksums(&mut mutated);
        let back: Vec<u64> = from_bytes(SnapshotKind::LshIndex, &mutated).unwrap();
        assert_eq!(back.len(), 3);
        assert_ne!(back, vec![7u64, 7, 7]);
        // Best-effort on garbage: must not panic.
        repair_checksums(&mut []);
        repair_checksums(&mut [0u8; 39]);
        let mut absurd = bytes;
        absurd[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        repair_checksums(&mut absurd);
    }

    #[test]
    fn lying_directory_lengths_are_corrupt_not_panics() {
        // vec![1u64, 2, 3] encodes to one 32-byte section (8-byte length
        // prefix + 3×8 payload). Misdeclare its directory length in both
        // directions; repair_checksums pushes the lie past the checksum
        // wall, and the exact-coverage check must reject it structurally.
        let bytes = to_bytes(SnapshotKind::LshIndex, &vec![1u64, 2, 3]);
        // Shrunk lengths pass repair, so the exact-coverage check fires;
        // an inflated length makes repair bail early (best-effort), so the
        // stale directory checksum rejects it instead. Either way: an
        // error, never a panic.
        for lied_len in [1u8, 31, 33] {
            let mut mutated = bytes.clone();
            mutated[HEADER_LEN + 4] = lied_len;
            repair_checksums(&mut mutated);
            assert!(
                matches!(
                    from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &mutated),
                    Err(SnapshotError::Corrupt(_) | SnapshotError::ChecksumMismatch { .. })
                ),
                "declared section length {lied_len} must be structurally rejected"
            );
        }
    }

    #[test]
    fn bit_flip_sweep_never_panics() {
        // Flip low and high bits at every byte offset — header, directory
        // and payload — both behind and past the checksum wall. Every
        // outcome must be a Result, never a panic.
        let bytes = to_bytes(SnapshotKind::LshIndex, &vec![0xABu64; 4]);
        for i in 0..bytes.len() {
            for bit in [0x01u8, 0x80] {
                let mut mutated = bytes.clone();
                mutated[i] ^= bit;
                let _ = from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &mutated);
                repair_checksums(&mut mutated);
                let _ = from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &mutated);
            }
        }
    }

    #[test]
    fn sections_start_at_aligned_offsets() {
        let value = TwoPart {
            head: vec![1, 2, 3],
            tail: (0..50).collect(),
        };
        let bytes = to_bytes(SnapshotKind::Shard, &value);
        // Recompute the writer's placement and check each section really
        // sits at a 64-byte image offset, with the image ending at the
        // last section's final byte.
        let dir_len = 4 + 2 * 16;
        let len0 = u64::from_le_bytes(bytes[HEADER_LEN + 4..HEADER_LEN + 12].try_into().unwrap());
        let len1 = u64::from_le_bytes(bytes[HEADER_LEN + 20..HEADER_LEN + 28].try_into().unwrap());
        let off0 = align_up(HEADER_LEN + dir_len).unwrap();
        let off1 = align_up(off0 + len0 as usize).unwrap();
        assert_eq!(off0 % SECTION_ALIGN, 0);
        assert_eq!(off1 % SECTION_ALIGN, 0);
        assert_eq!(bytes.len(), off1 + len1 as usize);
        // Padding bytes are zero.
        assert!(bytes[HEADER_LEN + dir_len..off0].iter().all(|&b| b == 0));
        assert!(bytes[off0 + len0 as usize..off1].iter().all(|&b| b == 0));
        // Header payload length covers padding exactly.
        let payload_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
        assert_eq!(payload_len, bytes.len() - HEADER_LEN);
    }

    #[test]
    fn nonzero_padding_is_corrupt() {
        let mut bytes = to_bytes(SnapshotKind::LshIndex, &vec![1u64, 2, 3]);
        // The gap between the 20-byte directory and the first aligned
        // section is padding: not covered by any checksum, so it must be
        // structurally required to be zero.
        bytes[HEADER_LEN + 20] = 0xAA;
        assert!(matches!(
            from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &bytes),
            Err(SnapshotError::Corrupt(msg)) if msg.contains("padding")
        ));
    }

    #[test]
    fn v2_files_are_rejected_with_an_upgrade_hint() {
        // A minimal genuine v2 image: directory immediately followed by
        // the (unaligned) section payload, version field = 2.
        let mut section = Encoder::new();
        vec![7u64].encode(&mut section);
        let section = section.into_bytes();
        let mut directory = Vec::new();
        directory.extend_from_slice(&1u32.to_le_bytes());
        directory.extend_from_slice(&(section.len() as u64).to_le_bytes());
        directory.extend_from_slice(&checksum64(&section).to_le_bytes());
        let payload_len = directory.len() + section.len();
        let mut v2 = Vec::new();
        v2.extend_from_slice(&MAGIC);
        v2.extend_from_slice(&2u32.to_le_bytes());
        v2.extend_from_slice(&ENDIAN_MARK.to_le_bytes());
        v2.extend_from_slice(&SnapshotKind::LshIndex.tag().to_le_bytes());
        v2.extend_from_slice(&0u32.to_le_bytes());
        v2.extend_from_slice(&(payload_len as u64).to_le_bytes());
        v2.extend_from_slice(&checksum64(&directory).to_le_bytes());
        v2.extend_from_slice(&directory);
        v2.extend_from_slice(&section);

        let err = from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &v2)
            .expect_err("a v2 file must not load");
        assert!(matches!(
            err,
            SnapshotError::UnsupportedVersion {
                found: 2,
                supported: FORMAT_VERSION
            }
        ));
        // The error text documents the upgrade path.
        let msg = err.to_string();
        assert!(
            msg.contains("version 2") && msg.contains(&format!("version {FORMAT_VERSION}")),
            "upgrade hint must name both versions: {msg}"
        );
    }

    /// A single-column type exercising the zero-copy [`SliceCodec`] path.
    #[derive(Debug, PartialEq)]
    struct PodColumn {
        values: crate::ArcSlice<u64>,
    }

    impl Codec for PodColumn {
        fn encode(&self, enc: &mut Encoder) {
            crate::SliceCodec::encode_slice(self.values.as_slice(), enc);
        }
        fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
            Ok(Self {
                values: <u64 as crate::SliceCodec>::decode_slice(dec)?,
            })
        }
    }

    #[test]
    fn snapshot_image_decodes_zero_copy_and_from_bytes_copies() {
        let value = PodColumn {
            values: crate::ArcSlice::from_vec((0..1000u64).collect()),
        };
        let bytes = to_bytes(SnapshotKind::LshIndex, &value);

        // Plain-slice decode: owned column.
        let copied: PodColumn = from_bytes(SnapshotKind::LshIndex, &bytes).unwrap();
        assert_eq!(copied, value);
        assert!(!copied.values.is_borrowed());

        // Image decode: the column borrows the image buffer in place.
        let image =
            SnapshotImage::from_arc_bytes(ArcBytes::copy_from_slice(&bytes).unwrap()).unwrap();
        assert_eq!(image.kind_tag(), SnapshotKind::LshIndex.tag());
        let borrowed: PodColumn = image.decode(SnapshotKind::LshIndex).unwrap();
        assert_eq!(borrowed, value);
        assert!(borrowed.values.is_borrowed());
        let base = image.as_bytes().as_slice().as_ptr() as usize;
        let col = borrowed.values.as_slice().as_ptr() as usize;
        assert!(col > base && col < base + image.len());
        assert_eq!(col % SECTION_ALIGN, 0, "column must land 64-byte aligned");

        // Wrong kind at decode time.
        assert!(matches!(
            image.decode::<PodColumn>(SnapshotKind::Shard),
            Err(SnapshotError::KindMismatch { .. })
        ));

        // The decoded structure keeps the buffer alive after the image
        // handle drops.
        drop(image);
        assert_eq!(borrowed.values.len(), 1000);
        assert_eq!(borrowed.values[999], 999);
    }

    #[test]
    fn snapshot_image_open_verifies_and_borrows_from_disk() {
        let path = std::env::temp_dir().join(format!(
            "fairnn-snapshot-image-test-{}.snap",
            std::process::id()
        ));
        let value = PodColumn {
            values: crate::ArcSlice::from_vec((0..256u64).rev().collect()),
        };
        save(SnapshotKind::Shard, &value, &path).unwrap();
        let image = SnapshotImage::open(&path).unwrap();
        let back: PodColumn = image.decode(SnapshotKind::Shard).unwrap();
        assert_eq!(back, value);
        assert!(back.values.is_borrowed());

        // Corrupt the file: open() must reject it up front.
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            SnapshotImage::open(&path),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            SnapshotImage::open(&path),
            Err(SnapshotError::Io(_))
        ));
    }

    #[test]
    fn checksum_is_stable() {
        // Pin the FNV-1a constants: a silent change would invalidate every
        // existing snapshot while still "round-tripping" in-process.
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum64(b"fairnn"), {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in b"fairnn" {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
            }
            h
        });
    }
}
