//! The on-disk container: header, section directory, checksums, and the
//! save/load entry points.
//!
//! Layout of format version 2 (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------------
//!      0     8  magic            "FAIRNNSS"
//!      8     4  format version   (this build reads exactly FORMAT_VERSION)
//!     12     4  byte-order mark  0x0A0B0C0D (reads back wrong if a writer
//!                                ever emitted native big-endian)
//!     16     4  kind tag         which structure the payload holds
//!     20     4  reserved         zero; room for future flags
//!     24     8  payload length   bytes following the header
//!     32     8  checksum         FNV-1a 64 over the section directory
//!     40     4  section count    ≥ 1           ┐
//!     44    16  len + checksum   of section 0  │ the section directory
//!      …    16  len + checksum   of section k  ┘ (covered by the header
//!                                                 checksum above)
//!      …     …  section payloads, concatenated in directory order
//! ```
//!
//! **Why sections?** Version 1 stored one flat payload under one checksum,
//! which forces serial verification and decoding. Version 2 lets a
//! structure split its image into independently checksummed sections
//! ([`Codec::encode_sections`]) — one per shard, one per LSH table — so
//! encode, checksum and decode all run on parallel build workers. The
//! bytes are identical at every thread count (sections are concatenated in
//! a fixed order), and a single-section file is exactly the old flat
//! payload plus a 20-byte directory.
//!
//! The header is fully validated before a single payload byte is decoded:
//! magic → version → byte order → kind → length → directory checksum, each
//! failure a distinct [`SnapshotError`] variant; each section's checksum is
//! verified before that section is decoded. Version bumps are deliberate
//! breaks — the format has no migration shims; a reader accepts exactly one
//! version, and files written by other versions are rejected with an
//! upgrade hint (rebuild from raw data and re-save, or re-save with the
//! build that wrote them).

use crate::codec::{Codec, Decoder};
use crate::error::SnapshotError;
use fairnn_obs::{LazyCounter, LazyHistogram, Timer};
use std::path::Path;

/// Wall time of [`save`] end to end (encode + checksum + write + rename).
static SAVE_NS: LazyHistogram = LazyHistogram::new(
    "snapshot_save_ns",
    "wall time of snapshot save (encode, checksum, write, rename) in nanoseconds",
);

/// Wall time of [`load`] end to end (read + verify + decode).
static LOAD_NS: LazyHistogram = LazyHistogram::new(
    "snapshot_load_ns",
    "wall time of snapshot load (read, verify, decode) in nanoseconds",
);

/// Total snapshot bytes written by [`save`].
static BYTES_WRITTEN: LazyCounter = LazyCounter::new(
    "snapshot_bytes_written_total",
    "total snapshot bytes written by save",
);

/// Total snapshot bytes read by [`load`].
static BYTES_READ: LazyCounter = LazyCounter::new(
    "snapshot_bytes_read_total",
    "total snapshot bytes read by load",
);

/// Per-section checksum cost, encode and verify sides both — the term the
/// sectioned format parallelises, so the distribution shows whether
/// sections are balanced.
static SECTION_CHECKSUM_NS: LazyHistogram = LazyHistogram::new(
    "snapshot_section_checksum_ns",
    "per-section FNV-1a checksum time (encode and verify) in nanoseconds",
);

/// Magic bytes at offset 0 of every snapshot.
pub const MAGIC: [u8; 8] = *b"FAIRNNSS";

/// The single format version this build writes and reads.
/// Version history: 1 = flat single-checksum payload; 2 = sectioned payload
/// with a per-section checksum directory (parallel encode/decode).
pub const FORMAT_VERSION: u32 = 2;

/// Byte-order marker: written little-endian, so a conforming file always
/// reads back as this value.
pub const ENDIAN_MARK: u32 = 0x0A0B_0C0D;

/// Total header size in bytes.
pub const HEADER_LEN: usize = 40;

/// Which structure a snapshot holds. The tag is stored in the header so a
/// loader immediately rejects a file holding the wrong structure instead of
/// misinterpreting its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SnapshotKind {
    /// A bare `fairnn_lsh::LshIndex`.
    LshIndex = 1,
    /// The Section 3 `fairnn_core::FairNns` structure.
    FairNns = 2,
    /// The Section 4 `fairnn_core::FairNnis` structure.
    FairNnis = 3,
    /// The Appendix A `fairnn_core::RankSwapSampler`.
    RankSwap = 4,
    /// A single `fairnn_engine::Shard`.
    Shard = 5,
    /// A `fairnn_engine::ShardedIndex` (all shards + partition map).
    ShardedIndex = 6,
    /// A full `fairnn_engine::QueryEngine` (index + cache + batch counter).
    QueryEngine = 7,
}

impl SnapshotKind {
    /// The header tag value.
    pub fn tag(self) -> u32 {
        self as u32
    }
}

/// FNV-1a 64-bit hash — the payload checksum. Simple, fast, and entirely
/// deterministic across platforms; a snapshot is trusted storage, so the
/// checksum guards against truncation and bit rot, not adversaries.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Serializes `value` into a complete snapshot byte image (header +
/// section directory + section payloads). Sections are produced by
/// [`Codec::encode_sections`] and checksummed on parallel build workers;
/// the assembled image is identical at every thread count.
pub fn to_bytes<T: Codec>(kind: SnapshotKind, value: &T) -> Vec<u8> {
    let sections = value.encode_sections();
    assert!(
        !sections.is_empty(),
        "a snapshot needs at least one section"
    );
    let checksums = fairnn_parallel::map_indexed(sections.len(), |i| {
        let _timer = Timer::start(&SECTION_CHECKSUM_NS);
        // fairnn-audit: allow(snapshot-index) — encode side: `i` ranges over `sections.len()` by construction
        checksum64(&sections[i])
    });

    let mut directory = Vec::with_capacity(4 + sections.len() * 16);
    directory.extend_from_slice(
        &u32::try_from(sections.len())
            // fairnn-audit: allow(snapshot-panic) — encode side: >u32::MAX sections is a programming error, not snapshot input
            .expect("section count fits u32")
            .to_le_bytes(),
    );
    for (section, checksum) in sections.iter().zip(&checksums) {
        directory.extend_from_slice(&(section.len() as u64).to_le_bytes());
        directory.extend_from_slice(&checksum.to_le_bytes());
    }
    let payload_len = directory.len() + sections.iter().map(Vec::len).sum::<usize>();

    let mut out = Vec::with_capacity(HEADER_LEN + payload_len);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&ENDIAN_MARK.to_le_bytes());
    out.extend_from_slice(&kind.tag().to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&(payload_len as u64).to_le_bytes());
    out.extend_from_slice(&checksum64(&directory).to_le_bytes());
    out.extend_from_slice(&directory);
    for section in &sections {
        out.extend_from_slice(section);
    }
    out
}

/// Parses a snapshot byte image produced by [`to_bytes`], validating the
/// full header chain and the section directory before decoding; section
/// checksums are verified (in parallel) before the sections reach
/// [`Codec::decode_sections`].
pub fn from_bytes<T: Codec>(kind: SnapshotKind, bytes: &[u8]) -> Result<T, SnapshotError> {
    // Magic first, so "not a snapshot at all" is distinguished from
    // "header cut short" even on sub-header inputs.
    if let Some(magic) = bytes.get(..8) {
        if magic != MAGIC {
            let mut found = [0u8; 8];
            for (dst, src) in found.iter_mut().zip(magic) {
                *dst = *src;
            }
            return Err(SnapshotError::BadMagic { found });
        }
    }
    let (Some(header_bytes), Some(payload)) = (bytes.get(8..HEADER_LEN), bytes.get(HEADER_LEN..))
    else {
        return Err(SnapshotError::Truncated {
            needed: HEADER_LEN,
            available: bytes.len(),
        });
    };
    // The `?`s below cannot fire — the header slice is exactly 32 bytes —
    // but snapshot code never panics on input, so they stay `?`.
    let mut header = Decoder::new(header_bytes);
    let version = header.read_u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let endian = header.read_u32()?;
    if endian != ENDIAN_MARK {
        return Err(SnapshotError::EndiannessMismatch { found: endian });
    }
    let found_kind = header.read_u32()?;
    if found_kind != kind.tag() {
        return Err(SnapshotError::KindMismatch {
            found: found_kind,
            expected: kind.tag(),
        });
    }
    let _reserved = header.read_u32()?;
    let payload_len = header.read_u64()?;
    let stored_checksum = header.read_u64()?;

    let payload_len = usize::try_from(payload_len).map_err(|_| {
        SnapshotError::Corrupt(format!("payload length {payload_len} does not fit usize"))
    })?;
    let available = payload.len();
    if available < payload_len {
        return Err(SnapshotError::Truncated {
            needed: payload_len,
            available,
        });
    }
    if available > payload_len {
        return Err(SnapshotError::TrailingBytes {
            remaining: available - payload_len,
        });
    }

    // Section directory: count, then (length, checksum) per section. The
    // header checksum covers exactly these bytes, so a corrupt directory is
    // caught before any length is trusted.
    let mut dir = Decoder::new(payload);
    let count = dir.read_u32().map_err(|_| SnapshotError::Truncated {
        needed: 4,
        available: payload.len(),
    })? as usize;
    let dir_len = 4 + count
        .checked_mul(16)
        .ok_or_else(|| SnapshotError::Corrupt(format!("section count {count} overflows")))?;
    let Some(directory) = payload.get(..dir_len) else {
        return Err(SnapshotError::Corrupt(format!(
            "section directory of {count} entries needs {dir_len} bytes, payload has {}",
            payload.len()
        )));
    };
    let computed = checksum64(directory);
    if computed != stored_checksum {
        return Err(SnapshotError::ChecksumMismatch {
            stored: stored_checksum,
            computed,
        });
    }
    if count == 0 {
        return Err(SnapshotError::Corrupt(
            "a snapshot needs at least one section".into(),
        ));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let len = dir.read_u64()?;
        let checksum = dir.read_u64()?;
        let len = usize::try_from(len).map_err(|_| {
            SnapshotError::Corrupt(format!("section length {len} does not fit usize"))
        })?;
        entries.push((len, checksum));
    }
    let sections_len: usize = entries
        .iter()
        .try_fold(0usize, |acc, (len, _)| acc.checked_add(*len))
        .ok_or_else(|| SnapshotError::Corrupt("section lengths overflow".into()))?;
    if dir_len + sections_len != payload.len() {
        return Err(SnapshotError::Corrupt(format!(
            "sections cover {sections_len} bytes, payload holds {} after the directory",
            payload.len() - dir_len
        )));
    }
    let mut sections = Vec::with_capacity(count);
    let mut offset = dir_len;
    for (len, _) in &entries {
        // In-bounds by the exact-coverage check above; `get` keeps the
        // no-panic guarantee even if that check ever regresses.
        let end = offset.checked_add(*len);
        let Some(section) = end.and_then(|end| payload.get(offset..end)) else {
            return Err(SnapshotError::Corrupt(
                "section extends past the payload".into(),
            ));
        };
        sections.push(section);
        offset += len;
    }

    // Per-section integrity, verified on parallel build workers.
    let section_sums = fairnn_parallel::map_indexed(count, |i| {
        let _timer = Timer::start(&SECTION_CHECKSUM_NS);
        // fairnn-audit: allow(snapshot-index) — `i` ranges over `count == sections.len()` by construction
        checksum64(sections[i])
    });
    for (i, (computed, (_, stored))) in section_sums.iter().zip(&entries).enumerate() {
        if computed != stored {
            debug_assert!(i < count);
            return Err(SnapshotError::ChecksumMismatch {
                stored: *stored,
                computed: *computed,
            });
        }
    }

    T::decode_sections(&sections)
}

/// Recomputes every checksum of a snapshot image in place — each section's
/// directory entry, then the header checksum over the directory. Tooling
/// and corruption tests use this to push a payload mutation *past* the
/// checksum wall so it reaches the structural decoders; it is best-effort
/// on malformed images (out-of-range lengths leave the image untouched).
pub fn repair_checksums(bytes: &mut [u8]) {
    let Some(count) = read_le_array::<4>(bytes, HEADER_LEN).map(u32::from_le_bytes) else {
        return;
    };
    let count = count as usize;
    let Some(dir_len) = count.checked_mul(16).and_then(|n| n.checked_add(4)) else {
        return;
    };
    if dir_len > bytes.len() - HEADER_LEN {
        return;
    }
    let mut offset = HEADER_LEN + dir_len;
    for i in 0..count {
        let entry = HEADER_LEN + 4 + i * 16;
        let Some(len) = read_le_array::<8>(bytes, entry).map(u64::from_le_bytes) else {
            return;
        };
        let Some(end) = offset.checked_add(len as usize) else {
            return;
        };
        let Some(section) = bytes.get(offset..end) else {
            return;
        };
        let checksum = checksum64(section).to_le_bytes();
        let Some(slot) = bytes.get_mut(entry + 8..entry + 16) else {
            return;
        };
        slot.copy_from_slice(&checksum);
        offset = end;
    }
    let Some(directory) = bytes.get(HEADER_LEN..HEADER_LEN + dir_len) else {
        return;
    };
    let checksum = checksum64(directory).to_le_bytes();
    if let Some(slot) = bytes.get_mut(32..40) {
        slot.copy_from_slice(&checksum);
    }
}

/// Reads `N` bytes at `at` as a fixed array, without indexing (`None` when
/// the slice is short or the range overflows).
fn read_le_array<const N: usize>(bytes: &[u8], at: usize) -> Option<[u8; N]> {
    let slice = bytes.get(at..at.checked_add(N)?)?;
    let mut out = [0u8; N];
    for (dst, src) in out.iter_mut().zip(slice) {
        *dst = *src;
    }
    Some(out)
}

/// Writes `value` as a snapshot file at `path` (atomically replaced via a
/// sibling temporary file, so readers never observe a half-written
/// snapshot).
pub fn save<T: Codec, P: AsRef<Path>>(
    kind: SnapshotKind,
    value: &T,
    path: P,
) -> Result<(), SnapshotError> {
    let _timer = Timer::start(&SAVE_NS);
    let path = path.as_ref();
    let bytes = to_bytes(kind, value);
    BYTES_WRITTEN.add(bytes.len() as u64);
    // The temp name appends to the *full* file name (never replaces an
    // extension — sibling snapshots sharing a stem must not collide) and
    // carries the pid so concurrent saves from different processes do not
    // race on one temp file.
    let file_name = path.file_name().ok_or_else(|| {
        SnapshotError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("snapshot path {} has no file name", path.display()),
        ))
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a snapshot file written by [`save`].
pub fn load<T: Codec, P: AsRef<Path>>(kind: SnapshotKind, path: P) -> Result<T, SnapshotError> {
    let _timer = Timer::start(&LOAD_NS);
    let bytes = std::fs::read(path)?;
    BYTES_READ.add(bytes.len() as u64);
    from_bytes(kind, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Encoder;

    #[test]
    fn image_roundtrip() {
        let value = vec![3u64, 1, 4, 1, 5];
        let bytes = to_bytes(SnapshotKind::LshIndex, &value);
        assert_eq!(&bytes[..8], &MAGIC);
        let back: Vec<u64> = from_bytes(SnapshotKind::LshIndex, &bytes).unwrap();
        assert_eq!(back, value);
        // Canonical: re-encoding the decoded value is byte-identical.
        assert_eq!(to_bytes(SnapshotKind::LshIndex, &back), bytes);
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = to_bytes(SnapshotKind::LshIndex, &7u64);
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes::<u64>(SnapshotKind::LshIndex, &bytes),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn bumped_version_rejected() {
        let mut bytes = to_bytes(SnapshotKind::LshIndex, &7u64);
        bytes[8] = FORMAT_VERSION as u8 + 1;
        assert!(matches!(
            from_bytes::<u64>(SnapshotKind::LshIndex, &bytes),
            Err(SnapshotError::UnsupportedVersion { found, supported })
                if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
        ));
    }

    #[test]
    fn flipped_endian_mark_rejected() {
        let mut bytes = to_bytes(SnapshotKind::LshIndex, &7u64);
        bytes[12..16].reverse(); // what a native big-endian writer would emit
        assert!(matches!(
            from_bytes::<u64>(SnapshotKind::LshIndex, &bytes),
            Err(SnapshotError::EndiannessMismatch { .. })
        ));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let bytes = to_bytes(SnapshotKind::FairNns, &7u64);
        assert!(matches!(
            from_bytes::<u64>(SnapshotKind::QueryEngine, &bytes),
            Err(SnapshotError::KindMismatch { found, expected })
                if found == SnapshotKind::FairNns.tag()
                    && expected == SnapshotKind::QueryEngine.tag()
        ));
    }

    #[test]
    fn payload_corruption_caught_by_checksum() {
        let mut bytes = to_bytes(SnapshotKind::LshIndex, &vec![1u64, 2, 3]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let bytes = to_bytes(SnapshotKind::LshIndex, &vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let err = from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &bytes[..cut])
                .expect_err("truncated snapshot must not load");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::BadMagic { .. }
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn appended_garbage_detected() {
        let mut bytes = to_bytes(SnapshotKind::LshIndex, &7u64);
        bytes.push(0);
        assert!(matches!(
            from_bytes::<u64>(SnapshotKind::LshIndex, &bytes),
            Err(SnapshotError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let path =
            std::env::temp_dir().join(format!("fairnn-snapshot-test-{}.snap", std::process::id()));
        save(SnapshotKind::Shard, &vec![9u64, 8, 7], &path).unwrap();
        let back: Vec<u64> = load(SnapshotKind::Shard, &path).unwrap();
        assert_eq!(back, vec![9, 8, 7]);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            load::<Vec<u64>, _>(SnapshotKind::Shard, &path),
            Err(SnapshotError::Io(_))
        ));
    }

    /// A two-section test type: exercises the sectioned encode/decode path
    /// the way the sharded structures use it.
    #[derive(Debug, PartialEq)]
    struct TwoPart {
        head: Vec<u64>,
        tail: Vec<u64>,
    }

    impl Codec for TwoPart {
        fn encode(&self, enc: &mut Encoder) {
            self.head.encode(enc);
            self.tail.encode(enc);
        }
        fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
            Ok(Self {
                head: Vec::decode(dec)?,
                tail: Vec::decode(dec)?,
            })
        }
        fn encode_sections(&self) -> Vec<Vec<u8>> {
            let mut head = Encoder::new();
            self.head.encode(&mut head);
            let mut tail = Encoder::new();
            self.tail.encode(&mut tail);
            vec![head.into_bytes(), tail.into_bytes()]
        }
        fn decode_sections(sections: &[&[u8]]) -> Result<Self, SnapshotError> {
            let [head, tail] = sections else {
                return Err(SnapshotError::Corrupt(format!(
                    "expected 2 sections, found {}",
                    sections.len()
                )));
            };
            let mut head_dec = Decoder::new(head);
            let mut tail_dec = Decoder::new(tail);
            let out = Self {
                head: Vec::decode(&mut head_dec)?,
                tail: Vec::decode(&mut tail_dec)?,
            };
            head_dec.finish()?;
            tail_dec.finish()?;
            Ok(out)
        }
    }

    #[test]
    fn multi_section_images_roundtrip_and_stay_canonical() {
        let value = TwoPart {
            head: vec![1, 2, 3],
            tail: vec![9, 8],
        };
        let bytes = to_bytes(SnapshotKind::Shard, &value);
        let back: TwoPart = from_bytes(SnapshotKind::Shard, &bytes).unwrap();
        assert_eq!(back, value);
        assert_eq!(to_bytes(SnapshotKind::Shard, &back), bytes);
        // 2 sections in the directory.
        assert_eq!(
            u32::from_le_bytes(bytes[HEADER_LEN..HEADER_LEN + 4].try_into().unwrap()),
            2
        );
        // Corrupting either section trips its own checksum.
        for offset in [HEADER_LEN + 4 + 32, bytes.len() - 1] {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= 0x01;
            assert!(matches!(
                from_bytes::<TwoPart>(SnapshotKind::Shard, &corrupt),
                Err(SnapshotError::ChecksumMismatch { .. })
            ));
        }
    }

    #[test]
    fn directory_corruption_is_caught_before_lengths_are_trusted() {
        let bytes = to_bytes(SnapshotKind::LshIndex, &vec![5u64; 8]);
        // Flip a byte of a section length inside the directory: the header
        // checksum over the directory must reject it.
        let mut corrupt = bytes.clone();
        corrupt[HEADER_LEN + 4] ^= 0xFF;
        assert!(matches!(
            from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &corrupt),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn repair_checksums_lets_mutations_reach_the_decoders() {
        let bytes = to_bytes(SnapshotKind::LshIndex, &vec![7u64, 7, 7]);
        let mut mutated = bytes.clone();
        let last = mutated.len() - 1;
        mutated[last] ^= 0x10;
        // Without repair: checksum wall.
        assert!(matches!(
            from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &mutated),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // With repair: checksums pass, the (structurally valid) mutated
        // value decodes.
        repair_checksums(&mut mutated);
        let back: Vec<u64> = from_bytes(SnapshotKind::LshIndex, &mutated).unwrap();
        assert_eq!(back.len(), 3);
        assert_ne!(back, vec![7u64, 7, 7]);
        // Best-effort on garbage: must not panic.
        repair_checksums(&mut []);
        repair_checksums(&mut [0u8; 39]);
        let mut absurd = bytes;
        absurd[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        repair_checksums(&mut absurd);
    }

    #[test]
    fn lying_directory_lengths_are_corrupt_not_panics() {
        // vec![1u64, 2, 3] encodes to one 32-byte section (8-byte length
        // prefix + 3×8 payload). Misdeclare its directory length in both
        // directions; repair_checksums pushes the lie past the checksum
        // wall, and the exact-coverage check must reject it structurally.
        let bytes = to_bytes(SnapshotKind::LshIndex, &vec![1u64, 2, 3]);
        // Shrunk lengths pass repair, so the exact-coverage check fires;
        // an inflated length makes repair bail early (best-effort), so the
        // stale directory checksum rejects it instead. Either way: an
        // error, never a panic.
        for lied_len in [1u8, 31, 33] {
            let mut mutated = bytes.clone();
            mutated[HEADER_LEN + 4] = lied_len;
            repair_checksums(&mut mutated);
            assert!(
                matches!(
                    from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &mutated),
                    Err(SnapshotError::Corrupt(_) | SnapshotError::ChecksumMismatch { .. })
                ),
                "declared section length {lied_len} must be structurally rejected"
            );
        }
    }

    #[test]
    fn bit_flip_sweep_never_panics() {
        // Flip low and high bits at every byte offset — header, directory
        // and payload — both behind and past the checksum wall. Every
        // outcome must be a Result, never a panic.
        let bytes = to_bytes(SnapshotKind::LshIndex, &vec![0xABu64; 4]);
        for i in 0..bytes.len() {
            for bit in [0x01u8, 0x80] {
                let mut mutated = bytes.clone();
                mutated[i] ^= bit;
                let _ = from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &mutated);
                repair_checksums(&mut mutated);
                let _ = from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &mutated);
            }
        }
    }

    #[test]
    fn checksum_is_stable() {
        // Pin the FNV-1a constants: a silent change would invalidate every
        // existing snapshot while still "round-tripping" in-process.
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum64(b"fairnn"), {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in b"fairnn" {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
            }
            h
        });
    }
}
