//! The on-disk container: header, checksum, and the save/load entry points.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------------
//!      0     8  magic            "FAIRNNSS"
//!      8     4  format version   (this build reads exactly FORMAT_VERSION)
//!     12     4  byte-order mark  0x0A0B0C0D (reads back wrong if a writer
//!                                ever emitted native big-endian)
//!     16     4  kind tag         which structure the payload holds
//!     20     4  reserved         zero; room for future flags
//!     24     8  payload length   bytes following the header
//!     32     8  checksum         FNV-1a 64 over the payload bytes
//!     40     …  payload          the structure's canonical Codec encoding
//! ```
//!
//! The header is fully validated before a single payload byte is decoded:
//! magic → version → byte order → kind → length → checksum, each failure a
//! distinct [`SnapshotError`] variant. Version bumps are deliberate breaks —
//! the format has no migration shims; a reader accepts exactly one version.

use crate::codec::{Codec, Decoder, Encoder};
use crate::error::SnapshotError;
use std::path::Path;

/// Magic bytes at offset 0 of every snapshot.
pub const MAGIC: [u8; 8] = *b"FAIRNNSS";

/// The single format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Byte-order marker: written little-endian, so a conforming file always
/// reads back as this value.
pub const ENDIAN_MARK: u32 = 0x0A0B_0C0D;

/// Total header size in bytes.
pub const HEADER_LEN: usize = 40;

/// Which structure a snapshot holds. The tag is stored in the header so a
/// loader immediately rejects a file holding the wrong structure instead of
/// misinterpreting its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SnapshotKind {
    /// A bare `fairnn_lsh::LshIndex`.
    LshIndex = 1,
    /// The Section 3 `fairnn_core::FairNns` structure.
    FairNns = 2,
    /// The Section 4 `fairnn_core::FairNnis` structure.
    FairNnis = 3,
    /// The Appendix A `fairnn_core::RankSwapSampler`.
    RankSwap = 4,
    /// A single `fairnn_engine::Shard`.
    Shard = 5,
    /// A `fairnn_engine::ShardedIndex` (all shards + partition map).
    ShardedIndex = 6,
    /// A full `fairnn_engine::QueryEngine` (index + cache + batch counter).
    QueryEngine = 7,
}

impl SnapshotKind {
    /// The header tag value.
    pub fn tag(self) -> u32 {
        self as u32
    }
}

/// FNV-1a 64-bit hash — the payload checksum. Simple, fast, and entirely
/// deterministic across platforms; a snapshot is trusted storage, so the
/// checksum guards against truncation and bit rot, not adversaries.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Serializes `value` into a complete snapshot byte image (header +
/// payload).
pub fn to_bytes<T: Codec>(kind: SnapshotKind, value: &T) -> Vec<u8> {
    let mut payload = Encoder::new();
    value.encode(&mut payload);
    let payload = payload.into_bytes();

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&ENDIAN_MARK.to_le_bytes());
    out.extend_from_slice(&kind.tag().to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parses a snapshot byte image produced by [`to_bytes`], validating the
/// full header chain before decoding the payload.
pub fn from_bytes<T: Codec>(kind: SnapshotKind, bytes: &[u8]) -> Result<T, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        // Distinguish "not even a magic" from "header cut short".
        if bytes.len() >= 8 && bytes[..8] != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(&bytes[..8]);
            return Err(SnapshotError::BadMagic { found });
        }
        return Err(SnapshotError::Truncated {
            needed: HEADER_LEN,
            available: bytes.len(),
        });
    }
    if bytes[..8] != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(SnapshotError::BadMagic { found });
    }
    let mut header = Decoder::new(&bytes[8..HEADER_LEN]);
    let version = header.read_u32().expect("header length checked");
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let endian = header.read_u32().expect("header length checked");
    if endian != ENDIAN_MARK {
        return Err(SnapshotError::EndiannessMismatch { found: endian });
    }
    let found_kind = header.read_u32().expect("header length checked");
    if found_kind != kind.tag() {
        return Err(SnapshotError::KindMismatch {
            found: found_kind,
            expected: kind.tag(),
        });
    }
    let _reserved = header.read_u32().expect("header length checked");
    let payload_len = header.read_u64().expect("header length checked");
    let stored_checksum = header.read_u64().expect("header length checked");

    let payload_len = usize::try_from(payload_len).map_err(|_| {
        SnapshotError::Corrupt(format!("payload length {payload_len} does not fit usize"))
    })?;
    let available = bytes.len() - HEADER_LEN;
    if available < payload_len {
        return Err(SnapshotError::Truncated {
            needed: payload_len,
            available,
        });
    }
    if available > payload_len {
        return Err(SnapshotError::TrailingBytes {
            remaining: available - payload_len,
        });
    }
    let payload = &bytes[HEADER_LEN..];
    let computed = checksum64(payload);
    if computed != stored_checksum {
        return Err(SnapshotError::ChecksumMismatch {
            stored: stored_checksum,
            computed,
        });
    }

    let mut dec = Decoder::new(payload);
    let value = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(value)
}

/// Writes `value` as a snapshot file at `path` (atomically replaced via a
/// sibling temporary file, so readers never observe a half-written
/// snapshot).
pub fn save<T: Codec, P: AsRef<Path>>(
    kind: SnapshotKind,
    value: &T,
    path: P,
) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    let bytes = to_bytes(kind, value);
    // The temp name appends to the *full* file name (never replaces an
    // extension — sibling snapshots sharing a stem must not collide) and
    // carries the pid so concurrent saves from different processes do not
    // race on one temp file.
    let file_name = path.file_name().ok_or_else(|| {
        SnapshotError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("snapshot path {} has no file name", path.display()),
        ))
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a snapshot file written by [`save`].
pub fn load<T: Codec, P: AsRef<Path>>(kind: SnapshotKind, path: P) -> Result<T, SnapshotError> {
    let bytes = std::fs::read(path)?;
    from_bytes(kind, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_roundtrip() {
        let value = vec![3u64, 1, 4, 1, 5];
        let bytes = to_bytes(SnapshotKind::LshIndex, &value);
        assert_eq!(&bytes[..8], &MAGIC);
        let back: Vec<u64> = from_bytes(SnapshotKind::LshIndex, &bytes).unwrap();
        assert_eq!(back, value);
        // Canonical: re-encoding the decoded value is byte-identical.
        assert_eq!(to_bytes(SnapshotKind::LshIndex, &back), bytes);
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = to_bytes(SnapshotKind::LshIndex, &7u64);
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes::<u64>(SnapshotKind::LshIndex, &bytes),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn bumped_version_rejected() {
        let mut bytes = to_bytes(SnapshotKind::LshIndex, &7u64);
        bytes[8] = FORMAT_VERSION as u8 + 1;
        assert!(matches!(
            from_bytes::<u64>(SnapshotKind::LshIndex, &bytes),
            Err(SnapshotError::UnsupportedVersion { found, supported })
                if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
        ));
    }

    #[test]
    fn flipped_endian_mark_rejected() {
        let mut bytes = to_bytes(SnapshotKind::LshIndex, &7u64);
        bytes[12..16].reverse(); // what a native big-endian writer would emit
        assert!(matches!(
            from_bytes::<u64>(SnapshotKind::LshIndex, &bytes),
            Err(SnapshotError::EndiannessMismatch { .. })
        ));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let bytes = to_bytes(SnapshotKind::FairNns, &7u64);
        assert!(matches!(
            from_bytes::<u64>(SnapshotKind::QueryEngine, &bytes),
            Err(SnapshotError::KindMismatch { found, expected })
                if found == SnapshotKind::FairNns.tag()
                    && expected == SnapshotKind::QueryEngine.tag()
        ));
    }

    #[test]
    fn payload_corruption_caught_by_checksum() {
        let mut bytes = to_bytes(SnapshotKind::LshIndex, &vec![1u64, 2, 3]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let bytes = to_bytes(SnapshotKind::LshIndex, &vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let err = from_bytes::<Vec<u64>>(SnapshotKind::LshIndex, &bytes[..cut])
                .expect_err("truncated snapshot must not load");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::BadMagic { .. }
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn appended_garbage_detected() {
        let mut bytes = to_bytes(SnapshotKind::LshIndex, &7u64);
        bytes.push(0);
        assert!(matches!(
            from_bytes::<u64>(SnapshotKind::LshIndex, &bytes),
            Err(SnapshotError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let path =
            std::env::temp_dir().join(format!("fairnn-snapshot-test-{}.snap", std::process::id()));
        save(SnapshotKind::Shard, &vec![9u64, 8, 7], &path).unwrap();
        let back: Vec<u64> = load(SnapshotKind::Shard, &path).unwrap();
        assert_eq!(back, vec![9, 8, 7]);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            load::<Vec<u64>, _>(SnapshotKind::Shard, &path),
            Err(SnapshotError::Io(_))
        ));
    }

    #[test]
    fn checksum_is_stable() {
        // Pin the FNV-1a constants: a silent change would invalidate every
        // existing snapshot while still "round-tripping" in-process.
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum64(b"fairnn"), {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in b"fairnn" {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
            }
            h
        });
    }
}
