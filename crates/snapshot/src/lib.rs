//! Versioned, checksummed binary snapshots: build frozen indexes once,
//! attach them from disk everywhere.
//!
//! Every process start used to rebuild LSH tables, CSR buckets, rank tables
//! and sketches from raw points. Pod-style serving architectures get their
//! elasticity from separating expensive state *construction* from cheap
//! state *attachment*; the frozen CSR structures of this workspace are flat,
//! offset-indexed representations that are one serialization step away from
//! that property — this crate is that step.
//!
//! The crate deliberately sits at the bottom of the dependency graph and
//! knows nothing about LSH or sampling. It provides:
//!
//! * [`Codec`] — the canonical little-endian encode/decode contract the
//!   structural crates (`fairnn-lsh`, `fairnn-sketch`, `fairnn-core`,
//!   `fairnn-engine`) implement next to their types;
//! * [`Encoder`] / [`Decoder`] — the bounds-checked byte cursors;
//! * the container format ([`to_bytes`] / [`from_bytes`] /
//!   [`save`] / [`load`]): an 8-byte magic, a format version, a byte-order
//!   marker, a structure [`SnapshotKind`] tag, the payload length, an
//!   FNV-1a checksum over the section directory — validated in that order
//!   before any payload byte is decoded — and per-section lengths and
//!   checksums, so large structures encode, verify and decode their
//!   sections on parallel build workers ([`Codec::encode_sections`]);
//! * [`SnapshotError`] — a typed error for every rejection path (bad magic,
//!   unsupported version, endianness, kind mismatch, checksum mismatch,
//!   truncation, corrupt payload, trailing bytes). Loading never panics on
//!   malformed input.
//!
//! The format is canonical: unordered containers are encoded in sorted
//! order, so `save → load → save` is byte-identical — which is also what
//! makes snapshot files meaningfully diffable and checksummable in CI.
//!
//! Format **v3** adds the servable layout: every section payload is placed
//! at a 64-byte-aligned image offset and the large fixed-width columns
//! inside are written as contiguous little-endian arrays ([`SliceCodec`]),
//! exactly the in-memory CSR/bank representation. A [`SnapshotImage`]
//! reads the whole file into one aligned allocation ([`ArcBytes`]),
//! verifies the header chain and every section checksum up front, and
//! then decodes structures whose columns ([`ArcSlice`]) *borrow* the image
//! in place — a warm engine load is O(1) large allocations and zero
//! per-element copies, and N processes can serve one page-cache-resident
//! image.
//!
//! This crate also hosts the workspace's **one blessed unsafe module**
//! ([`mod@bytes`]): aligned buffers, pod byte views, the SIMD feature
//! dispatcher and the software-prefetch shim. The `zero-copy-unsafe` rule
//! in `fairnn-audit` denies `unsafe` everywhere else in the workspace and
//! requires a written waiver on every use inside the module.

#![deny(unsafe_code)] // lifted to allow() inside `bytes`, the blessed module
#![warn(missing_docs)]

pub mod bytes;
mod codec;
mod container;
mod error;
mod wal;

pub use bytes::{
    pod_bytes, prefetch_read, ArcBytes, ArcSlice, CountingAlloc, Pod, LARGE_ALLOC_THRESHOLD,
    SECTION_ALIGN,
};
pub use codec::{decode_pod_slice, encode_pod_slice, Codec, Decoder, Encoder, Section, SliceCodec};
pub use container::{
    checksum64, from_bytes, image_from_sections, load, repair_checksums, save, save_image,
    to_bytes, SnapshotImage, SnapshotKind, ENDIAN_MARK, FORMAT_VERSION, HEADER_LEN, MAGIC,
};
pub use error::SnapshotError;
pub use wal::{parse_wal, read_wal, WalReplay, WalWriter, WAL_HEADER_LEN, WAL_MAGIC, WAL_VERSION};
