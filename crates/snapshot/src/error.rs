//! Typed snapshot errors.
//!
//! Every failure mode of the persistence layer is a distinct variant, so
//! callers (and the corruption tests) can match on *why* a snapshot was
//! rejected. Loading never panics on bad input: the header checks run before
//! any payload is decoded, and every payload read is bounds-checked.

use std::fmt;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic bytes.
    BadMagic {
        /// The first bytes actually found.
        found: [u8; 8],
    },
    /// The file was written by a different (incompatible) format version.
    UnsupportedVersion {
        /// Version recorded in the header.
        found: u32,
        /// The single version this build can read.
        supported: u32,
    },
    /// The header's byte-order marker does not decode to the expected value;
    /// the file was not produced by the little-endian on-disk convention.
    EndiannessMismatch {
        /// The marker as decoded little-endian.
        found: u32,
    },
    /// The file holds a different structure than the caller asked for.
    KindMismatch {
        /// Kind tag recorded in the header.
        found: u32,
        /// Kind tag the caller expected.
        expected: u32,
    },
    /// The payload hash does not match the checksum in the header.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the payload actually read.
        computed: u64,
    },
    /// The file ends before the declared payload (or header) is complete.
    Truncated {
        /// Bytes the reader needed.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// The payload bytes decode to a structurally invalid value (an
    /// impossible length, a broken invariant, an unknown tag).
    Corrupt(String),
    /// Decoding finished with unread payload bytes left over.
    TrailingBytes {
        /// Number of bytes left unread.
        remaining: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "not a fairnn snapshot (magic bytes {found:02x?})")
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads version {supported}); \
                 upgrade the file by rebuilding the structure from its raw data and re-saving it \
                 with this build (versions are deliberate breaks — there are no migration shims)"
            ),
            SnapshotError::EndiannessMismatch { found } => write!(
                f,
                "snapshot byte-order marker decodes to {found:#010x}; the file does not follow the little-endian convention"
            ),
            SnapshotError::KindMismatch { found, expected } => write!(
                f,
                "snapshot holds structure kind {found}, expected kind {expected}"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: header says {stored:#018x}, payload hashes to {computed:#018x}"
            ),
            SnapshotError::Truncated { needed, available } => write!(
                f,
                "snapshot truncated: needed {needed} byte(s), only {available} available"
            ),
            SnapshotError::Corrupt(what) => write!(f, "snapshot payload corrupt: {what}"),
            SnapshotError::TrailingBytes { remaining } => write!(
                f,
                "snapshot payload has {remaining} trailing byte(s) after decoding"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let cases: Vec<(SnapshotError, &str)> = vec![
            (SnapshotError::BadMagic { found: [0; 8] }, "magic"),
            (
                SnapshotError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                "version 9",
            ),
            (SnapshotError::EndiannessMismatch { found: 1 }, "byte-order"),
            (
                SnapshotError::KindMismatch {
                    found: 2,
                    expected: 3,
                },
                "kind",
            ),
            (
                SnapshotError::ChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                "checksum",
            ),
            (
                SnapshotError::Truncated {
                    needed: 8,
                    available: 3,
                },
                "truncated",
            ),
            (SnapshotError::Corrupt("bad".into()), "corrupt"),
            (SnapshotError::TrailingBytes { remaining: 4 }, "trailing"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} does not mention {needle}"
            );
        }
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let err: SnapshotError =
            std::io::Error::new(std::io::ErrorKind::NotFound, "missing").into();
        assert!(err.to_string().contains("I/O"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
