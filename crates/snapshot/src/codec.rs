//! The byte-level encoder/decoder pair and the [`Codec`] trait.
//!
//! Everything on disk is little-endian, independent of the host: writers use
//! `to_le_bytes`, readers use `from_le_bytes`, so a snapshot produced on any
//! toolchain loads on any other. The decoder owns a cursor over a borrowed
//! byte slice and bounds-checks every read, returning
//! [`SnapshotError::Truncated`] instead of panicking; length prefixes are
//! sanity-checked against the remaining input so corrupt lengths cannot
//! trigger absurd allocations.

use crate::bytes::{pod_bytes, ArcBytes, ArcSlice, Pod, SECTION_ALIGN};
use crate::error::SnapshotError;

/// Append-only byte sink for encoding (always little-endian).
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder and returns the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32` little-endian.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern, little-endian (NaN
    /// payloads survive the round trip bit for bit).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Writes a length prefix (`usize` as `u64`).
    pub fn write_len(&mut self, len: usize) {
        self.write_u64(len as u64);
    }

    /// Writes raw bytes with no length prefix.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pads with zero bytes so the next write lands on a
    /// [`SECTION_ALIGN`]-byte boundary *relative to the section start*.
    /// Format v3 places every section at a 64-byte-aligned image offset,
    /// so a section-relative boundary is also an absolute one — which is
    /// what lets [`decode_pod_slice`] hand out in-place views.
    pub fn align64(&mut self) {
        let rem = self.buf.len() % SECTION_ALIGN;
        if rem != 0 {
            let target = self.buf.len() + (SECTION_ALIGN - rem);
            self.buf.resize(target, 0);
        }
    }
}

/// Bounds-checked cursor over an encoded payload.
///
/// A decoder can optionally carry the [`ArcBytes`] buffer its input slice
/// lives in (plus the slice's byte offset within that buffer). When it
/// does, [`decode_pod_slice`] returns zero-copy [`ArcSlice`] views into
/// the buffer instead of copied vectors; without an owner every decode
/// falls back to the owned element-wise path.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    owner: Option<(&'a ArcBytes, usize)>,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            owner: None,
        }
    }

    /// Creates a decoder whose input is `bytes`, known to live at byte
    /// `offset` inside `owner` — the zero-copy entry point a
    /// [`Section`] with an owner produces.
    fn with_owner(bytes: &'a [u8], owner: &'a ArcBytes, offset: usize) -> Self {
        Self {
            bytes,
            pos: 0,
            owner: Some((owner, offset)),
        }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `n` bytes, or reports truncation. Uses checked
    /// slicing throughout: no input, however corrupt, can panic here.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let slice = self
            .pos
            .checked_add(n)
            .and_then(|end| self.bytes.get(self.pos..end));
        match slice {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => Err(SnapshotError::Truncated {
                needed: n,
                available: self.remaining(),
            }),
        }
    }

    /// Takes the next `N` bytes as a fixed array (the `from_le_bytes`
    /// input), or reports truncation.
    fn read_array<const N: usize>(&mut self) -> Result<[u8; N], SnapshotError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        for (dst, src) in out.iter_mut().zip(slice) {
            *dst = *src;
        }
        Ok(out)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, SnapshotError> {
        let [byte] = self.read_array::<1>()?;
        Ok(byte)
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.read_array()?))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.read_array()?))
    }

    /// Reads an `f64` from its little-endian bit pattern.
    pub fn read_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a length prefix, rejecting values that do not fit `usize` or
    /// that exceed the remaining input (every encoded element occupies at
    /// least one byte, so a greater length is provably corrupt and must not
    /// reach the allocator).
    pub fn read_len(&mut self) -> Result<usize, SnapshotError> {
        let raw = self.read_u64()?;
        let len = usize::try_from(raw)
            .map_err(|_| SnapshotError::Corrupt(format!("length {raw} does not fit usize")))?;
        if len > self.remaining() {
            return Err(SnapshotError::Corrupt(format!(
                "length prefix {len} exceeds the {} remaining payload byte(s)",
                self.remaining()
            )));
        }
        Ok(len)
    }

    /// Skips the zero padding up to the next [`SECTION_ALIGN`]-byte
    /// boundary (section-relative), rejecting nonzero padding bytes — the
    /// read-side counterpart of [`Encoder::align64`].
    pub fn skip_align64(&mut self) -> Result<(), SnapshotError> {
        let rem = self.pos % SECTION_ALIGN;
        if rem != 0 {
            let pad = self.take(SECTION_ALIGN - rem)?;
            if pad.iter().any(|&b| b != 0) {
                return Err(SnapshotError::Corrupt(
                    "alignment padding must be zero".into(),
                ));
            }
        }
        Ok(())
    }

    /// Asserts that the payload was fully consumed.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// One independently checksummed slice of a snapshot image, as handed to
/// [`Codec::decode_sections`]. Carries the backing [`ArcBytes`] buffer
/// (and this section's offset within it) when the image was loaded through
/// a [`crate::SnapshotImage`], which is what enables zero-copy decodes;
/// sections built from a plain byte slice decode element-wise instead.
#[derive(Debug, Clone, Copy)]
pub struct Section<'a> {
    bytes: &'a [u8],
    owner: Option<(&'a ArcBytes, usize)>,
}

impl<'a> Section<'a> {
    /// A section over plain bytes (owned decode only).
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, owner: None }
    }

    /// A section over `bytes` known to start at byte `offset` inside
    /// `owner` — decodes may borrow from the buffer.
    pub fn with_owner(bytes: &'a [u8], owner: &'a ArcBytes, offset: usize) -> Self {
        Self {
            bytes,
            owner: Some((owner, offset)),
        }
    }

    /// The section payload.
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// A decoder over the payload, carrying the owner when present.
    pub fn decoder(&self) -> Decoder<'a> {
        match self.owner {
            Some((owner, offset)) => Decoder::with_owner(self.bytes, owner, offset),
            None => Decoder::new(self.bytes),
        }
    }
}

/// Encodes `items` as a v3 pod slice: a length prefix, zero padding to the
/// next 64-byte boundary, then the elements as one contiguous
/// little-endian array — the exact in-memory image on little-endian
/// targets, written with a single `memcpy`. On big-endian hosts (where the
/// in-memory image is not the wire format) `write_elem` serializes each
/// element instead; the bytes produced are identical either way.
pub fn encode_pod_slice<T, F>(items: &[T], enc: &mut Encoder, mut write_elem: F)
where
    T: Pod,
    F: FnMut(&mut Encoder, &T),
{
    enc.write_len(items.len());
    enc.align64();
    match pod_bytes(items) {
        Some(raw) => enc.write_bytes(raw),
        None => {
            for item in items {
                write_elem(enc, item);
            }
        }
    }
}

/// Decodes a pod slice written by [`encode_pod_slice`]. When the decoder
/// carries an owning buffer and the array lands aligned, this is O(1): the
/// returned [`ArcSlice`] borrows the file bytes in place. Otherwise
/// `read_elem` decodes each element into an owned vector (same values —
/// `T: Pod` guarantees a fixed-width little-endian image with no invalid
/// bit patterns, so the two paths cannot disagree).
pub fn decode_pod_slice<T, F>(
    dec: &mut Decoder<'_>,
    mut read_elem: F,
) -> Result<ArcSlice<T>, SnapshotError>
where
    T: Pod,
    F: FnMut(&mut Decoder<'_>) -> Result<T, SnapshotError>,
{
    let len = dec.read_len()?;
    dec.skip_align64()?;
    let byte_len = len.checked_mul(std::mem::size_of::<T>()).ok_or_else(|| {
        SnapshotError::Corrupt(format!("pod slice of {len} elements overflows usize"))
    })?;
    let start = dec.pos;
    let raw = dec.take(byte_len)?;
    if let Some((owner, base)) = dec.owner {
        if let Some(offset) = base.checked_add(start) {
            if let Some(view) = ArcSlice::borrowed(owner, offset, len) {
                return Ok(view);
            }
        }
    }
    let mut elems = Decoder::new(raw);
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(read_elem(&mut elems)?);
    }
    elems.finish()?;
    Ok(ArcSlice::from_vec(out))
}

/// Element types whose slices use the aligned v3 array layout, borrowed in
/// place from a loaded image when possible ([`ArcSlice`]). Distinct from
/// `Vec<T>`'s [`Codec`] impl, which keeps the dense element-wise layout
/// for nested and non-pod data.
pub trait SliceCodec: Sized {
    /// Appends the canonical aligned-array encoding of `items`.
    fn encode_slice(items: &[Self], enc: &mut Encoder);

    /// Reads a slice written by [`SliceCodec::encode_slice`], borrowing
    /// from the decoder's backing buffer when possible.
    fn decode_slice(dec: &mut Decoder<'_>) -> Result<ArcSlice<Self>, SnapshotError>;
}

macro_rules! impl_pod_slice_codec {
    ($ty:ty, $write:ident, $read:ident) => {
        impl SliceCodec for $ty {
            fn encode_slice(items: &[Self], enc: &mut Encoder) {
                encode_pod_slice(items, enc, |enc, v| enc.$write(*v));
            }
            fn decode_slice(dec: &mut Decoder<'_>) -> Result<ArcSlice<Self>, SnapshotError> {
                decode_pod_slice(dec, |dec| dec.$read())
            }
        }
    };
}

impl_pod_slice_codec!(u8, write_u8, read_u8);
impl_pod_slice_codec!(u32, write_u32, read_u32);
impl_pod_slice_codec!(u64, write_u64, read_u64);
impl_pod_slice_codec!(f64, write_f64, read_f64);

/// Tuples store element-wise (their in-memory layout has padding and is
/// not a wire format), but keep the same length-prefix + alignment frame
/// so mixed pod/tuple columns share one layout discipline. Always owned.
impl<A: Codec, B: Codec> SliceCodec for (A, B) {
    fn encode_slice(items: &[Self], enc: &mut Encoder) {
        enc.write_len(items.len());
        enc.align64();
        for (a, b) in items {
            a.encode(enc);
            b.encode(enc);
        }
    }
    fn decode_slice(dec: &mut Decoder<'_>) -> Result<ArcSlice<Self>, SnapshotError> {
        let len = dec.read_len()?;
        dec.skip_align64()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(<(A, B)>::decode(dec)?);
        }
        Ok(ArcSlice::from_vec(out))
    }
}

/// A type that can write itself into an [`Encoder`] and read itself back
/// from a [`Decoder`].
///
/// The contract the snapshot tests enforce: `decode(encode(x)) == x`
/// observationally, and `encode(decode(bytes)) == bytes` for every payload
/// `encode` can produce (the encoding is canonical — unordered containers
/// are written in sorted order).
///
/// One restriction: a type whose encoding is zero bytes (the stateless unit
/// measures) must not be stored inside a length-prefixed container such as
/// `Vec<T>` — the decoder bounds every length prefix by the remaining input
/// (see [`Decoder::read_len`]), which assumes at least one byte per
/// element. `Vec::encode` carries a debug assertion for this; embed unit
/// types directly in their owning struct instead.
pub trait Codec: Sized {
    /// Appends this value's canonical encoding.
    fn encode(&self, enc: &mut Encoder);

    /// Reads one value, validating structural invariants.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError>;

    /// Splits this value's **container image** into independently decodable
    /// sections (the container stores one length and checksum per section
    /// and, since format v3, places each section payload at a 64-byte-
    /// aligned image offset; see `crate::container`). The default is a single section
    /// holding the plain [`Codec::encode`] bytes. Large structures override
    /// this with one section per shard or per table, so encode, checksum
    /// and decode all run on parallel build workers — with the emitted
    /// bytes identical at every thread count, because sections are always
    /// concatenated in order.
    ///
    /// Only the top-level value of a snapshot is sectioned; a value nested
    /// inside another's encoding always uses the inline [`Codec::encode`]
    /// form.
    fn encode_sections(&self) -> Vec<Vec<u8>> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        vec![enc.into_bytes()]
    }

    /// Reassembles a value from the container sections written by
    /// [`Codec::encode_sections`]. Implementations must reject a section
    /// count they did not produce, and every section must be fully
    /// consumed. Sections loaded through a [`crate::SnapshotImage`] carry
    /// their backing buffer, so [`SliceCodec`] columns decode zero-copy.
    fn decode_sections(sections: &[Section<'_>]) -> Result<Self, SnapshotError> {
        let [payload] = sections else {
            return Err(SnapshotError::Corrupt(format!(
                "expected a single snapshot section, found {}",
                sections.len()
            )));
        };
        let mut dec = payload.decoder();
        let value = Self::decode(&mut dec)?;
        dec.finish()?;
        Ok(value)
    }
}

impl Codec for u8 {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_u8(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        dec.read_u8()
    }
}

impl Codec for u32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_u32(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        dec.read_u32()
    }
}

impl Codec for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_u64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        dec.read_u64()
    }
}

impl Codec for usize {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_u64(*self as u64);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        let raw = dec.read_u64()?;
        usize::try_from(raw)
            .map_err(|_| SnapshotError::Corrupt(format!("value {raw} does not fit usize")))
    }
}

impl Codec for f64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_f64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        dec.read_f64()
    }
}

impl Codec for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_u8(u8::from(*self));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        match dec.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!(
                "boolean byte must be 0 or 1, found {other}"
            ))),
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.write_u8(0),
            Some(v) => {
                enc.write_u8(1);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        match dec.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            other => Err(SnapshotError::Corrupt(format!(
                "option tag must be 0 or 1, found {other}"
            ))),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_len(self.len());
        let payload_start = enc.len();
        for item in self {
            item.encode(enc);
        }
        debug_assert!(
            self.is_empty() || enc.len() > payload_start,
            "zero-byte Codec types cannot be length-prefixed (see the Codec trait docs)"
        );
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        let len = dec.read_len()?;
        // `read_len` bounds the length by the remaining input, so the
        // capacity request cannot exceed the snapshot size.
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

/// Transparent wrapper: an `Arc<T>` encodes exactly like its `T` (the
/// generational engine shares frozen shards between generations through
/// `Arc`s without changing the wire format).
impl<T: Codec> Codec for std::sync::Arc<T> {
    fn encode(&self, enc: &mut Encoder) {
        (**self).encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        Ok(std::sync::Arc::new(T::decode(dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        let mut enc = Encoder::new();
        value.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = T::decode(&mut dec).expect("decode");
        dec.finish().expect("fully consumed");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(-0.0f64);
        roundtrip(f64::INFINITY);
        roundtrip(true);
        roundtrip(false);
        roundtrip((7u32, 9u64));
        roundtrip(Option::<u64>::None);
        roundtrip(Some(42u64));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u32>::new());
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut enc = Encoder::new();
        weird.encode(&mut enc);
        let bytes = enc.into_bytes();
        let back = f64::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn encoding_is_little_endian() {
        let mut enc = Encoder::new();
        enc.write_u32(0x0A0B_0C0D);
        assert_eq!(enc.into_bytes(), vec![0x0D, 0x0C, 0x0B, 0x0A]);
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut dec = Decoder::new(&[1, 2, 3]);
        match dec.read_u64() {
            Err(SnapshotError::Truncated {
                needed: 8,
                available: 3,
            }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn every_primitive_read_reports_truncation() {
        assert!(matches!(
            Decoder::new(&[]).read_u8(),
            Err(SnapshotError::Truncated {
                needed: 1,
                available: 0
            })
        ));
        assert!(matches!(
            Decoder::new(&[1, 2]).read_u32(),
            Err(SnapshotError::Truncated {
                needed: 4,
                available: 2
            })
        ));
        assert!(matches!(
            Decoder::new(&[0; 7]).read_f64(),
            Err(SnapshotError::Truncated {
                needed: 8,
                available: 7
            })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_corrupt() {
        let mut enc = Encoder::new();
        enc.write_u64(1 << 40); // a "vector" far longer than the payload
        let bytes = enc.into_bytes();
        match Vec::<u64>::decode(&mut Decoder::new(&bytes)) {
            Err(SnapshotError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn bad_tags_are_corrupt() {
        assert!(matches!(
            bool::decode(&mut Decoder::new(&[7])),
            Err(SnapshotError::Corrupt(_))
        ));
        assert!(matches!(
            Option::<u8>::decode(&mut Decoder::new(&[9])),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let dec = Decoder::new(&[0, 1]);
        assert!(matches!(
            dec.finish(),
            Err(SnapshotError::TrailingBytes { remaining: 2 })
        ));
    }

    #[test]
    fn align64_pads_with_zeros_and_skip_verifies() {
        let mut enc = Encoder::new();
        enc.write_u8(0xFF);
        enc.align64();
        assert_eq!(enc.len(), SECTION_ALIGN);
        let bytes = enc.into_bytes();
        assert!(bytes[1..].iter().all(|&b| b == 0));

        let mut dec = Decoder::new(&bytes);
        dec.read_u8().unwrap();
        dec.skip_align64().unwrap();
        dec.finish().unwrap();

        // Nonzero padding is rejected.
        let mut corrupt = bytes.clone();
        corrupt[7] = 1;
        let mut dec = Decoder::new(&corrupt);
        dec.read_u8().unwrap();
        assert!(matches!(dec.skip_align64(), Err(SnapshotError::Corrupt(_))));

        // Already aligned: a no-op.
        let mut dec = Decoder::new(&bytes);
        dec.skip_align64().unwrap();
        assert_eq!(dec.remaining(), bytes.len());
    }

    #[test]
    fn pod_slice_roundtrips_without_owner() {
        let values: Vec<u64> = (0..100).map(|i| i * 31).collect();
        let mut enc = Encoder::new();
        u64::encode_slice(&values, &mut enc);
        // Length prefix, padding to 64, then 8 bytes per element.
        assert_eq!(enc.len(), SECTION_ALIGN + values.len() * 8);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = u64::decode_slice(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back.as_slice(), &values[..]);
        assert!(!back.is_borrowed(), "no owner: must decode owned");
    }

    #[test]
    fn pod_slice_borrows_from_an_owning_buffer() {
        let values: Vec<f64> = (0..32).map(|i| i as f64 * 0.5).collect();
        let mut enc = Encoder::new();
        f64::encode_slice(&values, &mut enc);
        let owner = crate::ArcBytes::copy_from_slice(&enc.into_bytes()).unwrap();
        let section = Section::with_owner(owner.as_slice(), &owner, 0);
        let mut dec = section.decoder();
        let back = f64::decode_slice(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back.as_slice(), &values[..]);
        assert!(
            back.is_borrowed(),
            "aligned owner-backed decode must borrow"
        );
        // The view points into the owner's allocation.
        let base = owner.as_slice().as_ptr() as usize;
        let view = back.as_slice().as_ptr() as usize;
        assert!(view >= base && view < base + owner.len());
    }

    #[test]
    fn tuple_slices_are_owned_but_framed_identically() {
        let values: Vec<(u32, u64)> = vec![(1, 10), (2, 20), (3, 30)];
        let mut enc = Encoder::new();
        <(u32, u64)>::encode_slice(&values, &mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = <(u32, u64)>::decode_slice(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back.as_slice(), &values[..]);
        assert!(!back.is_borrowed());
    }

    #[test]
    fn empty_pod_slice_roundtrips() {
        let mut enc = Encoder::new();
        u32::encode_slice(&[], &mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = u32::decode_slice(&mut dec).unwrap();
        dec.finish().unwrap();
        assert!(back.is_empty());
    }
}
