//! The byte-level encoder/decoder pair and the [`Codec`] trait.
//!
//! Everything on disk is little-endian, independent of the host: writers use
//! `to_le_bytes`, readers use `from_le_bytes`, so a snapshot produced on any
//! toolchain loads on any other. The decoder owns a cursor over a borrowed
//! byte slice and bounds-checks every read, returning
//! [`SnapshotError::Truncated`] instead of panicking; length prefixes are
//! sanity-checked against the remaining input so corrupt lengths cannot
//! trigger absurd allocations.

use crate::error::SnapshotError;

/// Append-only byte sink for encoding (always little-endian).
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder and returns the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32` little-endian.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern, little-endian (NaN
    /// payloads survive the round trip bit for bit).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Writes a length prefix (`usize` as `u64`).
    pub fn write_len(&mut self, len: usize) {
        self.write_u64(len as u64);
    }

    /// Writes raw bytes with no length prefix.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked cursor over an encoded payload.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `n` bytes, or reports truncation. Uses checked
    /// slicing throughout: no input, however corrupt, can panic here.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let slice = self
            .pos
            .checked_add(n)
            .and_then(|end| self.bytes.get(self.pos..end));
        match slice {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => Err(SnapshotError::Truncated {
                needed: n,
                available: self.remaining(),
            }),
        }
    }

    /// Takes the next `N` bytes as a fixed array (the `from_le_bytes`
    /// input), or reports truncation.
    fn read_array<const N: usize>(&mut self) -> Result<[u8; N], SnapshotError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        for (dst, src) in out.iter_mut().zip(slice) {
            *dst = *src;
        }
        Ok(out)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, SnapshotError> {
        let [byte] = self.read_array::<1>()?;
        Ok(byte)
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.read_array()?))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.read_array()?))
    }

    /// Reads an `f64` from its little-endian bit pattern.
    pub fn read_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a length prefix, rejecting values that do not fit `usize` or
    /// that exceed the remaining input (every encoded element occupies at
    /// least one byte, so a greater length is provably corrupt and must not
    /// reach the allocator).
    pub fn read_len(&mut self) -> Result<usize, SnapshotError> {
        let raw = self.read_u64()?;
        let len = usize::try_from(raw)
            .map_err(|_| SnapshotError::Corrupt(format!("length {raw} does not fit usize")))?;
        if len > self.remaining() {
            return Err(SnapshotError::Corrupt(format!(
                "length prefix {len} exceeds the {} remaining payload byte(s)",
                self.remaining()
            )));
        }
        Ok(len)
    }

    /// Asserts that the payload was fully consumed.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// A type that can write itself into an [`Encoder`] and read itself back
/// from a [`Decoder`].
///
/// The contract the snapshot tests enforce: `decode(encode(x)) == x`
/// observationally, and `encode(decode(bytes)) == bytes` for every payload
/// `encode` can produce (the encoding is canonical — unordered containers
/// are written in sorted order).
///
/// One restriction: a type whose encoding is zero bytes (the stateless unit
/// measures) must not be stored inside a length-prefixed container such as
/// `Vec<T>` — the decoder bounds every length prefix by the remaining input
/// (see [`Decoder::read_len`]), which assumes at least one byte per
/// element. `Vec::encode` carries a debug assertion for this; embed unit
/// types directly in their owning struct instead.
pub trait Codec: Sized {
    /// Appends this value's canonical encoding.
    fn encode(&self, enc: &mut Encoder);

    /// Reads one value, validating structural invariants.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError>;

    /// Splits this value's **container image** into independently decodable
    /// sections (the version-2 container stores one length and checksum per
    /// section; see `crate::container`). The default is a single section
    /// holding the plain [`Codec::encode`] bytes. Large structures override
    /// this with one section per shard or per table, so encode, checksum
    /// and decode all run on parallel build workers — with the emitted
    /// bytes identical at every thread count, because sections are always
    /// concatenated in order.
    ///
    /// Only the top-level value of a snapshot is sectioned; a value nested
    /// inside another's encoding always uses the inline [`Codec::encode`]
    /// form.
    fn encode_sections(&self) -> Vec<Vec<u8>> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        vec![enc.into_bytes()]
    }

    /// Reassembles a value from the container sections written by
    /// [`Codec::encode_sections`]. Implementations must reject a section
    /// count they did not produce, and every section must be fully
    /// consumed.
    fn decode_sections(sections: &[&[u8]]) -> Result<Self, SnapshotError> {
        let [payload] = sections else {
            return Err(SnapshotError::Corrupt(format!(
                "expected a single snapshot section, found {}",
                sections.len()
            )));
        };
        let mut dec = Decoder::new(payload);
        let value = Self::decode(&mut dec)?;
        dec.finish()?;
        Ok(value)
    }
}

impl Codec for u8 {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_u8(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        dec.read_u8()
    }
}

impl Codec for u32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_u32(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        dec.read_u32()
    }
}

impl Codec for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_u64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        dec.read_u64()
    }
}

impl Codec for usize {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_u64(*self as u64);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        let raw = dec.read_u64()?;
        usize::try_from(raw)
            .map_err(|_| SnapshotError::Corrupt(format!("value {raw} does not fit usize")))
    }
}

impl Codec for f64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_f64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        dec.read_f64()
    }
}

impl Codec for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_u8(u8::from(*self));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        match dec.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!(
                "boolean byte must be 0 or 1, found {other}"
            ))),
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.write_u8(0),
            Some(v) => {
                enc.write_u8(1);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        match dec.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            other => Err(SnapshotError::Corrupt(format!(
                "option tag must be 0 or 1, found {other}"
            ))),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_len(self.len());
        let payload_start = enc.len();
        for item in self {
            item.encode(enc);
        }
        debug_assert!(
            self.is_empty() || enc.len() > payload_start,
            "zero-byte Codec types cannot be length-prefixed (see the Codec trait docs)"
        );
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        let len = dec.read_len()?;
        // `read_len` bounds the length by the remaining input, so the
        // capacity request cannot exceed the snapshot size.
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        let mut enc = Encoder::new();
        value.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = T::decode(&mut dec).expect("decode");
        dec.finish().expect("fully consumed");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(-0.0f64);
        roundtrip(f64::INFINITY);
        roundtrip(true);
        roundtrip(false);
        roundtrip((7u32, 9u64));
        roundtrip(Option::<u64>::None);
        roundtrip(Some(42u64));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u32>::new());
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut enc = Encoder::new();
        weird.encode(&mut enc);
        let bytes = enc.into_bytes();
        let back = f64::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn encoding_is_little_endian() {
        let mut enc = Encoder::new();
        enc.write_u32(0x0A0B_0C0D);
        assert_eq!(enc.into_bytes(), vec![0x0D, 0x0C, 0x0B, 0x0A]);
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut dec = Decoder::new(&[1, 2, 3]);
        match dec.read_u64() {
            Err(SnapshotError::Truncated {
                needed: 8,
                available: 3,
            }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn every_primitive_read_reports_truncation() {
        assert!(matches!(
            Decoder::new(&[]).read_u8(),
            Err(SnapshotError::Truncated {
                needed: 1,
                available: 0
            })
        ));
        assert!(matches!(
            Decoder::new(&[1, 2]).read_u32(),
            Err(SnapshotError::Truncated {
                needed: 4,
                available: 2
            })
        ));
        assert!(matches!(
            Decoder::new(&[0; 7]).read_f64(),
            Err(SnapshotError::Truncated {
                needed: 8,
                available: 7
            })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_corrupt() {
        let mut enc = Encoder::new();
        enc.write_u64(1 << 40); // a "vector" far longer than the payload
        let bytes = enc.into_bytes();
        match Vec::<u64>::decode(&mut Decoder::new(&bytes)) {
            Err(SnapshotError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn bad_tags_are_corrupt() {
        assert!(matches!(
            bool::decode(&mut Decoder::new(&[7])),
            Err(SnapshotError::Corrupt(_))
        ));
        assert!(matches!(
            Option::<u8>::decode(&mut Decoder::new(&[9])),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let dec = Decoder::new(&[0, 1]);
        assert!(matches!(
            dec.finish(),
            Err(SnapshotError::TrailingBytes { remaining: 2 })
        ));
    }
}
