//! The write-ahead log: durable commit records between checkpoints.
//!
//! A generational engine writer appends one record per committed write
//! batch *before* publishing the new generation, so a crashed process
//! replays `checkpoint + WAL tail` instead of rebuilding from raw points.
//! The log is deliberately dumb — it stores opaque [`crate::Codec`]
//! payloads; the engine owns the record schema (sequence number + batch)
//! and the replay semantics.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! ------  ----  --------------------------------------------------
//!      0     8  magic            "FAIRNNWL"
//!      8     4  wal version      (this build reads exactly WAL_VERSION)
//!     12     4  reserved         zero; room for future flags
//!     16     …  records, back to back:
//!               [u32 payload len][u64 FNV-1a checksum][payload]
//! ```
//!
//! Records are append-only and each `append` is followed by an
//! `fdatasync`, so after a crash the file is a valid prefix plus at most
//! one torn record. [`read_wal`] recovers accordingly: a record cut short
//! by the end of the file, or a checksum-mismatching **final** record, is
//! a torn tail — dropped, reported via [`WalReplay::dropped_tail`], and
//! truncated away when the writer [`WalWriter::resume`]s. A checksum
//! mismatch on an *interior* record cannot be a torn write (a synced
//! record followed it) and is reported as corruption instead. Reading
//! never panics on malformed input, like every other decoder in this
//! crate.

use crate::codec::Decoder;
use crate::container::checksum64;
use crate::error::SnapshotError;
use fairnn_obs::{LazyCounter, LazyHistogram, Timer};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

/// Wall time of the `fdatasync` that makes each appended record durable —
/// the latency floor of a commit.
static WAL_FSYNC_NS: LazyHistogram = LazyHistogram::new(
    "snapshot_wal_fsync_ns",
    "wall time of the per-append WAL fdatasync in nanoseconds",
);

/// Total record bytes (headers included) appended to write-ahead logs.
static WAL_BYTES_WRITTEN: LazyCounter = LazyCounter::new(
    "snapshot_wal_bytes_written_total",
    "total WAL record bytes written by append",
);

/// Records recovered by [`read_wal`] across all replays.
static WAL_RECORDS_REPLAYED: LazyCounter = LazyCounter::new(
    "snapshot_wal_records_replayed_total",
    "WAL records successfully read back during replay",
);

/// Torn tails detected (and dropped) by [`read_wal`].
static WAL_TAILS_DROPPED: LazyCounter = LazyCounter::new(
    "snapshot_wal_tails_dropped_total",
    "torn WAL tail records detected and dropped during replay",
);

/// Magic bytes at offset 0 of every write-ahead log.
pub const WAL_MAGIC: [u8; 8] = *b"FAIRNNWL";

/// The single WAL format version this build writes and reads. Version
/// bumps are deliberate breaks, exactly like the snapshot container: a
/// reader accepts one version and rejects everything else with a hint to
/// checkpoint with the build that wrote the log.
pub const WAL_VERSION: u32 = 1;

/// File-header size in bytes.
pub const WAL_HEADER_LEN: usize = 16;

/// Per-record header size: `u32` payload length + `u64` payload checksum.
const RECORD_HEADER_LEN: usize = 12;

/// An append-only write-ahead log open for writing. Every [`append`]
/// writes one length-prefixed, checksummed record and `fdatasync`s it, so
/// an acknowledged commit survives process death.
///
/// [`append`]: WalWriter::append
#[derive(Debug)]
pub struct WalWriter {
    file: std::fs::File,
    bytes: u64,
}

impl WalWriter {
    /// Creates (or truncates) the log at `path` and writes the file
    /// header durably.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let mut file = std::fs::File::create(path)?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN);
        header.extend_from_slice(&WAL_MAGIC);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(Self {
            file,
            bytes: WAL_HEADER_LEN as u64,
        })
    }

    /// Reopens an existing log for appending, truncating it to
    /// `valid_len` first — the [`WalReplay::valid_len`] a preceding
    /// [`read_wal`] established, so a dropped torn tail is physically
    /// removed before new records land after it.
    pub fn resume<P: AsRef<Path>>(path: P, valid_len: u64) -> Result<Self, SnapshotError> {
        if valid_len < WAL_HEADER_LEN as u64 {
            return Err(SnapshotError::Corrupt(format!(
                "wal valid length {valid_len} is shorter than the {WAL_HEADER_LEN}-byte header"
            )));
        }
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        file.sync_data()?;
        Ok(Self {
            file,
            bytes: valid_len,
        })
    }

    /// Appends one record and makes it durable (`fdatasync`). Returns the
    /// total record size in bytes (header + payload).
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, SnapshotError> {
        let len = u32::try_from(payload.len()).map_err(|_| {
            SnapshotError::Corrupt(format!(
                "wal record payload of {} bytes exceeds the u32 length field",
                payload.len()
            ))
        })?;
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        record.extend_from_slice(&len.to_le_bytes());
        record.extend_from_slice(&checksum64(payload).to_le_bytes());
        record.extend_from_slice(payload);
        self.file.write_all(&record)?;
        {
            let _timer = Timer::start(&WAL_FSYNC_NS);
            self.file.sync_data()?;
        }
        WAL_BYTES_WRITTEN.add(record.len() as u64);
        self.bytes += record.len() as u64;
        Ok(record.len() as u64)
    }

    /// Current file length in bytes (header + every appended record).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// The result of reading a write-ahead log back: the recovered record
/// payloads (in append order), the byte length of the valid prefix, and
/// whether a torn tail record was detected and dropped.
#[derive(Debug)]
pub struct WalReplay {
    /// Recovered record payloads, oldest first.
    pub records: Vec<Vec<u8>>,
    /// Length in bytes of the valid prefix (header + intact records).
    /// [`WalWriter::resume`] truncates the file to exactly this length.
    pub valid_len: u64,
    /// Whether bytes past `valid_len` existed and were dropped as a torn
    /// tail (a crash between `write` and `fdatasync`).
    pub dropped_tail: bool,
}

/// Reads the log at `path` and recovers every intact record (see the
/// module docs for the torn-tail rules).
pub fn read_wal<P: AsRef<Path>>(path: P) -> Result<WalReplay, SnapshotError> {
    let bytes = std::fs::read(path)?;
    parse_wal(&bytes)
}

/// In-memory form of [`read_wal`] (the kill-during-commit tests feed
/// byte images directly).
pub fn parse_wal(bytes: &[u8]) -> Result<WalReplay, SnapshotError> {
    let Some(header) = bytes.get(..WAL_HEADER_LEN) else {
        return Err(SnapshotError::Corrupt(format!(
            "wal header needs {WAL_HEADER_LEN} bytes, file holds {}",
            bytes.len()
        )));
    };
    let (magic, tail) = header.split_at(8);
    if magic != WAL_MAGIC {
        return Err(SnapshotError::Corrupt(format!(
            "wal magic mismatch: found {magic:02x?}"
        )));
    }
    let mut dec = Decoder::new(tail);
    let version = dec.read_u32()?;
    if version != WAL_VERSION {
        return Err(SnapshotError::Corrupt(format!(
            "wal version {version} unsupported; this build reads version {WAL_VERSION} \
             (checkpoint with the build that wrote the log, then delete it)"
        )));
    }
    let _reserved = dec.read_u32()?;

    let mut records = Vec::new();
    let mut offset = WAL_HEADER_LEN;
    let mut dropped_tail = false;
    while offset < bytes.len() {
        let header_end = offset.saturating_add(RECORD_HEADER_LEN);
        let Some(record_header) = bytes.get(offset..header_end) else {
            dropped_tail = true; // record header cut short by the crash
            break;
        };
        let mut dec = Decoder::new(record_header);
        let len = dec.read_u32()? as usize;
        let stored = dec.read_u64()?;
        let end = header_end.saturating_add(len);
        let Some(payload) = bytes.get(header_end..end) else {
            dropped_tail = true; // payload cut short by the crash
            break;
        };
        let computed = checksum64(payload);
        if computed != stored {
            if end == bytes.len() {
                // Final record: a torn write that reached full length but
                // not full content. Drop it like a short tail.
                dropped_tail = true;
                break;
            }
            // Interior record: a synced record follows it, so this is bit
            // rot, not a torn write.
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        records.push(payload.to_vec());
        offset = end;
    }
    if dropped_tail {
        WAL_TAILS_DROPPED.inc();
    }
    WAL_RECORDS_REPLAYED.add(records.len() as u64);
    Ok(WalReplay {
        records,
        valid_len: offset as u64,
        dropped_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fairnn-wal-test-{tag}-{}.wal", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_records_in_order() {
        let path = temp_path("roundtrip");
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(b"first").unwrap();
        wal.append(b"").unwrap();
        wal.append(&[0xAB; 100]).unwrap();
        let replay = read_wal(&path).unwrap();
        assert_eq!(
            replay.records,
            vec![b"first".to_vec(), Vec::new(), vec![0xAB; 100]]
        );
        assert!(!replay.dropped_tail);
        assert_eq!(replay.valid_len, wal.bytes());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn short_tail_is_dropped_at_every_cut() {
        let path = temp_path("short-tail");
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(b"keep me").unwrap();
        let keep_len = wal.bytes();
        wal.append(b"torn away").unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Cutting exactly at the valid prefix leaves nothing torn; every
        // strictly-longer cut short of the full record must drop the tail.
        let exact = parse_wal(&full[..keep_len as usize]).unwrap();
        assert!(!exact.dropped_tail);
        for cut in keep_len as usize + 1..full.len() - 1 {
            let replay = parse_wal(&full[..cut]).unwrap();
            assert_eq!(replay.records, vec![b"keep me".to_vec()], "cut at {cut}");
            assert!(replay.dropped_tail, "cut at {cut}");
            assert_eq!(replay.valid_len, keep_len, "cut at {cut}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn final_record_checksum_mismatch_is_a_dropped_tail() {
        let path = temp_path("final-flip");
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(b"intact").unwrap();
        let keep_len = wal.bytes();
        wal.append(b"flipped").unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let replay = parse_wal(&bytes).unwrap();
        assert_eq!(replay.records, vec![b"intact".to_vec()]);
        assert!(replay.dropped_tail);
        assert_eq!(replay.valid_len, keep_len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn interior_corruption_is_an_error_not_a_drop() {
        let path = temp_path("interior-flip");
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(b"first record").unwrap();
        wal.append(b"second record").unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[WAL_HEADER_LEN + RECORD_HEADER_LEN] ^= 0x01; // first payload byte
        assert!(matches!(
            parse_wal(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_truncates_the_torn_tail_physically() {
        let path = temp_path("resume");
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(b"durable").unwrap();
        wal.append(b"torn").unwrap();
        drop(wal);
        // Simulate the crash: chop the last record mid-payload.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(replay.dropped_tail);
        let mut wal = WalWriter::resume(&path, replay.valid_len).unwrap();
        wal.append(b"after recovery").unwrap();
        let replay = read_wal(&path).unwrap();
        assert_eq!(
            replay.records,
            vec![b"durable".to_vec(), b"after recovery".to_vec()]
        );
        assert!(!replay.dropped_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(
            parse_wal(b"FAIRNNW"),
            Err(SnapshotError::Corrupt(msg)) if msg.contains("header")
        ));
        assert!(matches!(
            parse_wal(b"NOTAWAL!\x01\x00\x00\x00\x00\x00\x00\x00"),
            Err(SnapshotError::Corrupt(msg)) if msg.contains("magic")
        ));
        let mut wrong_version = Vec::new();
        wrong_version.extend_from_slice(&WAL_MAGIC);
        wrong_version.extend_from_slice(&(WAL_VERSION + 1).to_le_bytes());
        wrong_version.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            parse_wal(&wrong_version),
            Err(SnapshotError::Corrupt(msg)) if msg.contains("version")
        ));
    }

    #[test]
    fn bit_flip_sweep_never_panics() {
        let path = temp_path("flip-sweep");
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(b"alpha").unwrap();
        wal.append(b"beta").unwrap();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        for i in 0..bytes.len() {
            for bit in [0x01u8, 0x80] {
                let mut mutated = bytes.clone();
                mutated[i] ^= bit;
                let _ = parse_wal(&mutated);
            }
        }
        for cut in 0..bytes.len() {
            let _ = parse_wal(&bytes[..cut]);
        }
    }
}
