//! Read-optimized, frozen bucket storage.
//!
//! The mutable form of an LSH table is a `HashMap<u64, Vec<PointId>>`: ideal
//! for building and for incremental updates, but every bucket is its own
//! heap allocation and every lookup chases map metadata — exactly the wrong
//! layout for the query hot path, which does nothing but "find bucket, scan
//! bucket" `L` times per query. [`FrozenTable`] is the read-optimized
//! counterpart: a sorted key array, a CSR-style offset array, and one
//! contiguous entry array. Lookups are a binary search over a dense `u64`
//! array (cache-friendly, no hashing) and a bucket is a contiguous slice of
//! one allocation.
//!
//! Freezing preserves the *per-bucket entry order* of the staging form
//! bit-for-bit. Every fair-sampling guarantee in this workspace is defined
//! over bucket contents and their order (rank-sorted buckets, first-near
//! scans), so the freeze must be — and is — invisible to samplers; the
//! golden tests in `fairnn-integration` pin this.
//!
//! The entry type is generic: the plain index stores [`fairnn_space::PointId`]
//! entries, the Section 4 structure stores `(rank, id)` pairs with a
//! parallel sketch array.

use fairnn_snapshot::{ArcSlice, SliceCodec};
use std::collections::HashMap;

/// Sentinel for an empty slot of the open-addressing key index.
const EMPTY_SLOT: u32 = u32::MAX;

/// A frozen (read-optimized) bucket table: sorted keys, CSR offsets, one
/// contiguous entry array, plus a flat open-addressing index from key to
/// bucket position (Fibonacci hashing + linear probing over a power-of-two
/// slot array) so a lookup costs a couple of dependent loads instead of a
/// branchy binary search. See the module docs for the layout rationale.
///
/// Every array is an [`ArcSlice`]: owned when built in memory, a zero-copy
/// borrow of the snapshot image when decoded from a
/// [`fairnn_snapshot::SnapshotImage`]. The slot index is persisted alongside
/// the CSR triplet (and fully validated on decode), so loading a table
/// performs no per-entry work at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenTable<E> {
    keys: ArcSlice<u64>,
    /// `offsets[i]..offsets[i + 1]` is the entry range of bucket `i`.
    offsets: ArcSlice<u32>,
    entries: ArcSlice<E>,
    /// Open-addressing slots holding bucket indices ([`EMPTY_SLOT`] = free);
    /// `slots.len()` is a power of two of at least `2 × keys.len()`.
    slots: ArcSlice<u32>,
    /// Right-shift applied to the Fibonacci-multiplied key to obtain a slot.
    slot_shift: u32,
}

impl<E> Default for FrozenTable<E> {
    fn default() -> Self {
        let (slots, slot_shift) = build_slots(&[]);
        Self {
            keys: ArcSlice::default(),
            offsets: ArcSlice::from_vec(vec![0]),
            entries: ArcSlice::default(),
            slots: ArcSlice::from_vec(slots),
            slot_shift,
        }
    }
}

/// First probe slot of `key` in a table with `1 << (64 - shift)` slots.
#[inline]
fn first_slot(key: u64, shift: u32) -> usize {
    // Fibonacci hashing: multiply by 2^64 / φ and keep the top bits.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize
}

/// Capacity of the open-addressing slot array for `num_keys` buckets
/// (load factor ≤ 1/2, minimum 4).
#[inline]
fn slot_capacity(num_keys: usize) -> usize {
    (num_keys * 2).next_power_of_two().max(4)
}

/// Builds the open-addressing key index of a sorted, distinct key array.
/// Deterministic in the keys alone; both the freeze path and the staging
/// snapshot writer (`LshTable`'s canonical wire form) use this, which is
/// what keeps the two encodings byte-identical.
pub(crate) fn build_slots(keys: &[u64]) -> (Vec<u32>, u32) {
    let capacity = slot_capacity(keys.len());
    let slot_shift = 64 - capacity.trailing_zeros();
    let mut slots = vec![EMPTY_SLOT; capacity];
    let mask = capacity - 1;
    for (i, &key) in keys.iter().enumerate() {
        let mut slot = first_slot(key, slot_shift);
        while slots[slot] != EMPTY_SLOT {
            slot = (slot + 1) & mask;
        }
        slots[slot] = i as u32;
    }
    (slots, slot_shift)
}

impl<E> FrozenTable<E> {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Freezes a collection of `(key, bucket)` pairs. Keys are sorted (and
    /// must be distinct); the entries of each bucket keep their order.
    pub fn from_buckets(buckets: impl IntoIterator<Item = (u64, Vec<E>)>) -> Self {
        let mut pairs: Vec<(u64, Vec<E>)> = buckets.into_iter().collect();
        pairs.sort_unstable_by_key(|(key, _)| *key);
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "bucket keys must be distinct"
        );
        let total: usize = pairs.iter().map(|(_, bucket)| bucket.len()).sum();
        let mut keys = Vec::with_capacity(pairs.len());
        let mut offsets = Vec::with_capacity(pairs.len() + 1);
        let mut entries = Vec::with_capacity(total);
        offsets.push(0);
        for (key, bucket) in pairs {
            keys.push(key);
            entries.extend(bucket);
            offsets.push(u32::try_from(entries.len()).expect("table exceeds u32 entries"));
        }
        let (slots, slot_shift) = build_slots(&keys);
        let table = Self {
            keys: keys.into(),
            offsets: offsets.into(),
            entries: entries.into(),
            slots: slots.into(),
            slot_shift,
        };
        table.debug_assert_csr_invariants();
        table
    }

    /// Debug-only check of the CSR structural invariants every lookup
    /// relies on: strictly increasing keys, `offsets` one longer than
    /// `keys`, starting at 0, non-decreasing, and ending exactly at
    /// `entries.len()`. Compiled away in release builds; both construction
    /// paths ([`FrozenTable::from_buckets`] and the snapshot decoder) call
    /// it so a violated invariant fails at the build site, not at some
    /// later query.
    fn debug_assert_csr_invariants(&self) {
        debug_assert_eq!(
            self.offsets.len(),
            self.keys.len() + 1,
            "CSR offsets must be one longer than keys"
        );
        debug_assert_eq!(
            self.offsets.first(),
            Some(&0),
            "CSR offsets must start at 0"
        );
        debug_assert!(
            self.offsets.windows(2).all(|w| w[0] <= w[1]),
            "CSR offsets must be non-decreasing"
        );
        debug_assert_eq!(
            self.offsets.last().copied().unwrap_or(0) as usize,
            self.entries.len(),
            "CSR offsets must end at entries.len()"
        );
        debug_assert!(
            self.keys.windows(2).all(|w| w[0] < w[1]),
            "CSR keys must be strictly increasing"
        );
    }

    /// Thaws the table back into its staging (`HashMap`) form, preserving
    /// per-bucket entry order.
    pub fn into_buckets(self) -> HashMap<u64, Vec<E>>
    where
        E: Clone,
    {
        let mut map = HashMap::with_capacity(self.keys.len());
        for i in 0..self.keys.len() {
            map.insert(self.keys[i], self.bucket_at(i).to_vec());
        }
        map
    }

    /// Index of the bucket for `key`, if present. A probe of the flat hash
    /// index — `O(1)` with a couple of loads — rather than a binary search.
    #[inline]
    pub fn find(&self, key: u64) -> Option<usize> {
        let mask = self.slots.len().wrapping_sub(1);
        let mut slot = first_slot(key, self.slot_shift);
        loop {
            let bucket = *self.slots.get(slot)?;
            if bucket == EMPTY_SLOT {
                return None;
            }
            if self.keys[bucket as usize] == key {
                return Some(bucket as usize);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Issues a software prefetch for the cache line a lookup of `key`
    /// probes first (its home slot of the key index), so candidate walks
    /// can overlap the probe's memory latency with work on the previous
    /// table. Purely a hint; a no-op off x86_64.
    #[inline]
    pub fn prefetch(&self, key: u64) {
        fairnn_snapshot::prefetch_read(&self.slots, first_slot(key, self.slot_shift));
    }

    /// The bucket for `key` (empty slice if absent).
    #[inline]
    pub fn bucket(&self, key: u64) -> &[E] {
        match self.find(key) {
            Some(i) => self.bucket_at(i),
            None => &[],
        }
    }

    /// The bucket at index `i` (as returned by [`FrozenTable::find`]).
    #[inline]
    pub fn bucket_at(&self, i: usize) -> &[E] {
        &self.entries[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Mutable view of the bucket for `key`. The *contents* of a frozen
    /// bucket may be rearranged in place (the rank-swap structure re-sorts
    /// buckets after a rank exchange); the bucket structure itself is fixed.
    /// On a table borrowing a snapshot image this is copy-on-write: the
    /// first mutation detaches the entry array into an owned vector.
    #[inline]
    pub fn bucket_mut(&mut self, key: u64) -> Option<&mut [E]>
    where
        E: Clone,
    {
        let i = self.find(key)?;
        let (start, end) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        Some(&mut self.entries.to_mut()[start..end])
    }

    /// The key of bucket `i`.
    #[inline]
    pub fn key_at(&self, i: usize) -> u64 {
        self.keys[i]
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.keys.len()
    }

    /// Total number of stored entries.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Size of the largest bucket (0 for an empty table).
    pub fn max_bucket_size(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Iterator over `(key, bucket)` pairs in increasing key order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, &[E])> {
        (0..self.keys.len()).map(|i| (self.keys[i], self.bucket_at(i)))
    }
}

impl<E: fairnn_snapshot::SliceCodec> fairnn_snapshot::Codec for FrozenTable<E> {
    /// Persists the CSR triplet `(keys, offsets, entries)` **and** the
    /// open-addressing slot index, each as a v3 aligned array
    /// ([`fairnn_snapshot::SliceCodec`]). When decoded from a snapshot
    /// image every array is a zero-copy borrow, and because the slot index
    /// travels with the data (validated below) the load performs no
    /// per-entry hashing or copying at all.
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        u64::encode_slice(&self.keys, enc);
        u32::encode_slice(&self.offsets, enc);
        E::encode_slice(&self.entries, enc);
        u32::encode_slice(&self.slots, enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        use fairnn_snapshot::SnapshotError;
        let keys = u64::decode_slice(dec)?;
        let offsets = u32::decode_slice(dec)?;
        let entries = E::decode_slice(dec)?;
        let slots = u32::decode_slice(dec)?;
        if offsets.len() != keys.len() + 1 {
            return Err(SnapshotError::Corrupt(format!(
                "frozen table has {} keys but {} offsets (expected one more than keys)",
                keys.len(),
                offsets.len()
            )));
        }
        if offsets.first() != Some(&0) {
            return Err(SnapshotError::Corrupt(
                "frozen table offsets must start at 0".into(),
            ));
        }
        if !offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err(SnapshotError::Corrupt(
                "frozen table offsets are not non-decreasing".into(),
            ));
        }
        if *offsets.last().expect("offsets non-empty") as usize != entries.len() {
            return Err(SnapshotError::Corrupt(format!(
                "frozen table final offset {} does not match {} entries",
                offsets.last().expect("offsets non-empty"),
                entries.len()
            )));
        }
        if !keys.windows(2).all(|w| w[0] < w[1]) {
            return Err(SnapshotError::Corrupt(
                "frozen table keys are not strictly increasing".into(),
            ));
        }
        // Slot-index validation. The stored index must be exactly the one
        // `build_slots` derives: correct capacity (this also fixes the
        // shift), every occupied slot naming a real bucket, no bucket
        // missing or duplicated, and every key reachable by its probe
        // sequence. After these checks a lookup can trust the index
        // blindly — including that probe loops terminate (load factor
        // ≤ 1/2 guarantees an empty slot on every probe path).
        if slots.len() != slot_capacity(keys.len()) {
            return Err(SnapshotError::Corrupt(format!(
                "frozen table slot index has {} slots but {} keys require {}",
                slots.len(),
                keys.len(),
                slot_capacity(keys.len())
            )));
        }
        let slot_shift = 64 - slots.len().trailing_zeros();
        let mut occupied = 0usize;
        for &slot in slots.iter() {
            if slot != EMPTY_SLOT {
                occupied += 1;
                if slot as usize >= keys.len() {
                    return Err(SnapshotError::Corrupt(format!(
                        "frozen table slot names bucket {slot} of {}",
                        keys.len()
                    )));
                }
            }
        }
        if occupied != keys.len() {
            return Err(SnapshotError::Corrupt(format!(
                "frozen table slot index holds {occupied} entries for {} keys",
                keys.len()
            )));
        }
        let mask = slots.len() - 1;
        for (i, &key) in keys.iter().enumerate() {
            let mut slot = first_slot(key, slot_shift);
            loop {
                let bucket = slots[slot];
                if bucket == i as u32 {
                    break;
                }
                if bucket == EMPTY_SLOT {
                    return Err(SnapshotError::Corrupt(format!(
                        "frozen table slot index cannot reach bucket {i}"
                    )));
                }
                slot = (slot + 1) & mask;
            }
        }
        let table = Self {
            keys,
            offsets,
            entries,
            slots,
            slot_shift,
        };
        table.debug_assert_csr_invariants();
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> FrozenTable<u32> {
        FrozenTable::from_buckets(vec![
            (9, vec![7, 3, 5]),
            (2, vec![1]),
            (400, vec![9, 9, 2, 4]),
        ])
    }

    #[test]
    fn lookup_preserves_bucket_contents_and_order() {
        let table = sample_table();
        assert_eq!(table.bucket(9), &[7, 3, 5]);
        assert_eq!(table.bucket(2), &[1]);
        assert_eq!(table.bucket(400), &[9, 9, 2, 4]);
        assert!(table.bucket(3).is_empty());
        assert_eq!(table.num_buckets(), 3);
        assert_eq!(table.num_entries(), 8);
        assert_eq!(table.max_bucket_size(), 4);
    }

    #[test]
    fn buckets_iterate_in_key_order() {
        let table = sample_table();
        let keys: Vec<u64> = table.buckets().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![2, 9, 400]);
        assert_eq!(table.key_at(0), 2);
        assert_eq!(table.find(9), Some(1));
        assert_eq!(table.find(10), None);
    }

    #[test]
    fn bucket_mut_allows_in_place_rearrangement() {
        let mut table = sample_table();
        table.bucket_mut(9).expect("bucket exists").sort_unstable();
        assert_eq!(table.bucket(9), &[3, 5, 7]);
        assert_eq!(table.bucket(2), &[1], "sibling buckets untouched");
        assert!(table.bucket_mut(77).is_none());
    }

    #[test]
    fn freeze_thaw_roundtrip_is_lossless() {
        let table = sample_table();
        let map = table.clone().into_buckets();
        assert_eq!(map.len(), 3);
        assert_eq!(map[&9], vec![7, 3, 5]);
        assert_eq!(map[&2], vec![1]);
        assert_eq!(map[&400], vec![9, 9, 2, 4]);
        let refrozen = FrozenTable::from_buckets(map);
        assert_eq!(refrozen, table);
    }

    #[test]
    fn snapshot_decode_from_an_owning_buffer_is_zero_copy() {
        use fairnn_snapshot::{ArcBytes, Codec, Section};
        let table = sample_table();
        let mut enc = fairnn_snapshot::Encoder::new();
        table.encode(&mut enc);
        let owner = ArcBytes::copy_from_slice(&enc.into_bytes()).expect("buffer");
        let section = Section::with_owner(owner.as_slice(), &owner, 0);
        let mut dec = section.decoder();
        let loaded = FrozenTable::<u32>::decode(&mut dec).expect("decode");
        dec.finish().expect("fully consumed");
        assert_eq!(loaded, table);
        assert!(loaded.keys.is_borrowed(), "keys must borrow the image");
        assert!(
            loaded.offsets.is_borrowed(),
            "offsets must borrow the image"
        );
        assert!(
            loaded.entries.is_borrowed(),
            "entries must borrow the image"
        );
        assert!(loaded.slots.is_borrowed(), "slots must borrow the image");
        assert_eq!(loaded.bucket(9), &[7, 3, 5]);
        assert_eq!(loaded.find(400), Some(2));
    }

    #[test]
    fn corrupt_slot_indexes_are_rejected() {
        use fairnn_snapshot::{Codec, Decoder, Encoder, SliceCodec, SnapshotError};
        let table = sample_table();
        let encode_with_slots = |slots: &[u32]| {
            let mut enc = Encoder::new();
            u64::encode_slice(&table.keys, &mut enc);
            u32::encode_slice(&table.offsets, &mut enc);
            u32::encode_slice(&table.entries, &mut enc);
            u32::encode_slice(slots, &mut enc);
            enc.into_bytes()
        };
        let decode = |bytes: &[u8]| FrozenTable::<u32>::decode(&mut Decoder::new(bytes));

        // Three keys need capacity 8.
        let wrong_capacity = encode_with_slots(&[EMPTY_SLOT; 4]);
        assert!(matches!(
            decode(&wrong_capacity),
            Err(SnapshotError::Corrupt(msg)) if msg.contains("slot index has")
        ));

        let mut out_of_range = vec![EMPTY_SLOT; 8];
        out_of_range[0] = 7; // only buckets 0..3 exist
        let out_of_range = encode_with_slots(&out_of_range);
        assert!(matches!(
            decode(&out_of_range),
            Err(SnapshotError::Corrupt(msg)) if msg.contains("names bucket")
        ));

        let under_occupied = encode_with_slots(&[EMPTY_SLOT; 8]);
        assert!(matches!(
            decode(&under_occupied),
            Err(SnapshotError::Corrupt(msg)) if msg.contains("holds 0 entries")
        ));

        // Right capacity and occupancy, but bucket 2 never appears, so its
        // key is unreachable by its probe sequence.
        let mut unreachable = vec![EMPTY_SLOT; 8];
        (unreachable[0], unreachable[1], unreachable[2]) = (0, 0, 1);
        let unreachable = encode_with_slots(&unreachable);
        assert!(matches!(
            decode(&unreachable),
            Err(SnapshotError::Corrupt(msg)) if msg.contains("cannot reach")
        ));
    }

    #[test]
    fn empty_table_behaves() {
        let table: FrozenTable<u32> = FrozenTable::new();
        assert_eq!(table.num_buckets(), 0);
        assert_eq!(table.num_entries(), 0);
        assert_eq!(table.max_bucket_size(), 0);
        assert!(table.bucket(0).is_empty());
        assert_eq!(table.buckets().count(), 0);
        assert!(table.clone().into_buckets().is_empty());
    }
}
