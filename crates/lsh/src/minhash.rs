//! MinHash and 1-bit ("b-bit") MinHash for Jaccard similarity.
//!
//! MinHash (Broder \[12\]) hashes a set to the minimum value of a random
//! permutation of the item universe restricted to the set; two sets collide
//! with probability exactly equal to their Jaccard similarity. The paper's
//! experiments (Section 6) use the 1-bit variant of Li and König \[29\],
//! which keeps only the least-significant bit of the MinHash value; a single
//! bit collides with probability `(1 + J) / 2` for Jaccard similarity `J`,
//! and concatenating `K` bits gives a compact `K`-bit bucket key.
//!
//! Random permutations are approximated by multiply-shift hash functions
//! over the item universe, the standard practice for MinHash
//! implementations.

use crate::family::{CollisionModel, LshFamily, LshHasher};
use fairnn_sketch::hashing::{splitmix64, MultiplyShift};
use fairnn_space::SparseSet;
use rand::Rng;

/// The classic MinHash family: one random "permutation" per hasher.
///
/// Collision probability of a single hasher equals the Jaccard similarity.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinHash;

/// A single MinHash function.
#[derive(Debug, Clone)]
pub struct MinHasher {
    perm: MultiplyShift,
}

impl MinHasher {
    /// Creates a MinHash function from a seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            perm: MultiplyShift::new(splitmix64(seed), 64),
        }
    }

    /// Returns the full 64-bit MinHash value (minimum hashed item).
    /// The empty set maps to `u64::MAX`.
    ///
    /// The multiply-shift value is passed through the SplitMix64 finalizer so
    /// that *all* output bits are well mixed; the 1-bit variant keeps only
    /// the least-significant bit, which would otherwise be badly distributed
    /// for multiply-shift.
    pub fn min_value(&self, set: &SparseSet) -> u64 {
        set.items()
            .iter()
            .map(|&item| splitmix64(self.perm.hash(item as u64)))
            .min()
            .unwrap_or(u64::MAX)
    }
}

/// Width of a row block in the batched MinHash evaluation: small enough
/// that a block's running minima and hash coefficients stay in registers,
/// wide enough to expose independent multiply chains to the pipeline.
const MIN_BLOCK: usize = 8;

/// Batched MinHash evaluation: rows are processed in blocks of
/// [`MIN_BLOCK`]; within a block each item of the set is loaded once and
/// updates all of the block's running minima, which live in a fixed-size
/// (register-promoted) array. Bit-identical to evaluating the rows one by
/// one — a minimum is order-independent — while loading the set
/// `rows.len() / MIN_BLOCK` times instead of `rows.len()` times and keeping
/// eight independent hash/min chains in flight per item.
///
/// On x86-64 CPUs with AVX-512DQ the block kernel runs eight lanes wide
/// ([`kernel::min_block_avx512`]); everywhere else (and on the remainder
/// rows) the scalar block kernel runs. The two produce identical bits —
/// [`kernel`]'s docs spell out why, and the equality tests pin it.
#[inline]
fn min_values_blocked<T>(
    rows: &[T],
    perm_of: impl Fn(&T) -> MultiplyShift,
    point: &SparseSet,
    out: &mut [u64],
) {
    let items = point.items();
    let mut row_blocks = rows.chunks_exact(MIN_BLOCK);
    let mut out_blocks = out.chunks_exact_mut(MIN_BLOCK);
    for (row_block, out_block) in row_blocks.by_ref().zip(out_blocks.by_ref()) {
        // MinHash rows are always full-width multiply-shift (see
        // `MinHasher::from_seed`), so the coefficients alone drive the
        // kernel: a block's (a, b) pairs and running minima all fit in
        // registers for the duration of the item stream.
        let coeff: [(u64, u64); MIN_BLOCK] =
            std::array::from_fn(|j| perm_of(&row_block[j]).coefficients());
        let mut mins = [u64::MAX; MIN_BLOCK];
        fairnn_snapshot::dispatch_x86_feature!(
            ["avx512f", "avx512dq", "avx2"],
            kernel::min_block_avx512(&coeff, items, &mut mins),
            min_block_scalar(&coeff, items, &mut mins)
        );
        out_block.copy_from_slice(&mins);
    }
    for (row, slot) in row_blocks
        .remainder()
        .iter()
        .zip(out_blocks.into_remainder())
    {
        let perm = perm_of(row);
        let mut min = u64::MAX;
        for &item in items {
            min = min.min(splitmix64(perm.hash(item as u64)));
        }
        *slot = min;
    }
}

/// Scalar form of the block kernel: eight independent multiply-shift →
/// SplitMix64 → running-min chains advance per item load.
#[inline]
fn min_block_scalar(coeff: &[(u64, u64); MIN_BLOCK], items: &[u32], mins: &mut [u64; MIN_BLOCK]) {
    for &item in items {
        let x = item as u64;
        for j in 0..MIN_BLOCK {
            let (a, b) = coeff[j];
            mins[j] = mins[j].min(splitmix64(a.wrapping_mul(x).wrapping_add(b)));
        }
    }
}

/// The AVX-512 lane kernel behind [`min_values_blocked`].
///
/// One 512-bit vector holds all eight lanes of a [`MIN_BLOCK`] row block,
/// so the multiply-shift evaluation, the full SplitMix64 finalizer, and the
/// running-minimum update each execute once per item instead of eight
/// times. Every step is a lane-wise exact image of the scalar arithmetic
/// (`vpmullq` *is* 64-bit wrapping multiply, `vpminuq` *is* unsigned min),
/// so the minima — and therefore the sampling output — are bit-for-bit
/// identical to the scalar kernel; the `scalar_and_simd_kernels_agree` test
/// pins this on hardware that runs both.
#[cfg(target_arch = "x86_64")]
mod kernel {
    use super::MIN_BLOCK;
    use std::arch::x86_64::{
        _mm256_extract_epi64, _mm512_add_epi64, _mm512_extracti64x4_epi64, _mm512_min_epu64,
        _mm512_mullo_epi64, _mm512_set1_epi64, _mm512_set_epi64, _mm512_srli_epi64,
        _mm512_xor_epi64,
    };

    /// SplitMix64's golden-ratio increment, folded into the `b` addends up
    /// front so the per-item loop starts directly at the finalizer.
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    const MIX_1: i64 = 0xBF58_476D_1CE4_E5B9_u64 as i64;
    const MIX_2: i64 = 0x94D0_49BB_1331_11EB_u64 as i64;

    /// `mins[j] = min(mins[j], splitmix64(a_j * x + b_j))` over all items
    /// `x`, eight lanes at a time. Safe-bodied: only value-based intrinsics
    /// (no pointer loads), callable through
    /// [`fairnn_snapshot::dispatch_x86_feature!`] once `avx512f`,
    /// `avx512dq` and `avx2` are detected.
    #[target_feature(enable = "avx512f", enable = "avx512dq", enable = "avx2")]
    pub(super) fn min_block_avx512(
        coeff: &[(u64, u64); MIN_BLOCK],
        items: &[u32],
        mins: &mut [u64; MIN_BLOCK],
    ) {
        // `_mm512_set_epi64` takes its arguments from lane 7 down to lane 0.
        let va = _mm512_set_epi64(
            coeff[7].0 as i64,
            coeff[6].0 as i64,
            coeff[5].0 as i64,
            coeff[4].0 as i64,
            coeff[3].0 as i64,
            coeff[2].0 as i64,
            coeff[1].0 as i64,
            coeff[0].0 as i64,
        );
        let vb = _mm512_set_epi64(
            coeff[7].1.wrapping_add(GOLDEN) as i64,
            coeff[6].1.wrapping_add(GOLDEN) as i64,
            coeff[5].1.wrapping_add(GOLDEN) as i64,
            coeff[4].1.wrapping_add(GOLDEN) as i64,
            coeff[3].1.wrapping_add(GOLDEN) as i64,
            coeff[2].1.wrapping_add(GOLDEN) as i64,
            coeff[1].1.wrapping_add(GOLDEN) as i64,
            coeff[0].1.wrapping_add(GOLDEN) as i64,
        );
        let mix1 = _mm512_set1_epi64(MIX_1);
        let mix2 = _mm512_set1_epi64(MIX_2);
        let mut vmin = _mm512_set1_epi64(-1); // u64::MAX in every lane
        for &item in items {
            // Items are u32, so the i64 widening never sign-extends.
            let vx = _mm512_set1_epi64(item as i64);
            let z = _mm512_add_epi64(_mm512_mullo_epi64(va, vx), vb);
            let z = _mm512_mullo_epi64(_mm512_xor_epi64(z, _mm512_srli_epi64::<30>(z)), mix1);
            let z = _mm512_mullo_epi64(_mm512_xor_epi64(z, _mm512_srli_epi64::<27>(z)), mix2);
            let z = _mm512_xor_epi64(z, _mm512_srli_epi64::<31>(z));
            vmin = _mm512_min_epu64(vmin, z);
        }
        let (lo, hi) = (
            _mm512_extracti64x4_epi64::<0>(vmin),
            _mm512_extracti64x4_epi64::<1>(vmin),
        );
        *mins = [
            _mm256_extract_epi64::<0>(lo) as u64,
            _mm256_extract_epi64::<1>(lo) as u64,
            _mm256_extract_epi64::<2>(lo) as u64,
            _mm256_extract_epi64::<3>(lo) as u64,
            _mm256_extract_epi64::<0>(hi) as u64,
            _mm256_extract_epi64::<1>(hi) as u64,
            _mm256_extract_epi64::<2>(hi) as u64,
            _mm256_extract_epi64::<3>(hi) as u64,
        ];
    }
}

impl fairnn_snapshot::Codec for MinHasher {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.perm.encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        let perm = MultiplyShift::decode(dec)?;
        if perm.out_bits() != 64 {
            return Err(fairnn_snapshot::SnapshotError::Corrupt(
                "MinHash permutations are full-width multiply-shift".into(),
            ));
        }
        Ok(Self { perm })
    }
}

/// Writes a MinHash bank as one aligned `[a0, b0, a1, b1, …]` coefficient
/// array — the snapshot-v3 bulk layout shared by [`MinHasher`] and
/// [`OneBitMinHasher`] row banks.
fn encode_coefficient_rows(
    perms: impl ExactSizeIterator<Item = MultiplyShift>,
    enc: &mut fairnn_snapshot::Encoder,
) {
    let mut coefficients = Vec::with_capacity(perms.len() * 2);
    for perm in perms {
        let (a, b) = perm.coefficients();
        coefficients.push(a);
        coefficients.push(b);
    }
    fairnn_snapshot::encode_pod_slice(&coefficients, enc, |enc, v| enc.write_u64(*v));
}

/// Reads a coefficient array written by [`encode_coefficient_rows`] back
/// into `count` full-width multiply-shift permutations. The array is
/// borrowed zero-copy from a snapshot image when one backs the decoder;
/// the permutations themselves are rebuilt in a single pass.
fn decode_coefficient_rows(
    dec: &mut fairnn_snapshot::Decoder<'_>,
    count: usize,
) -> Result<Vec<MultiplyShift>, fairnn_snapshot::SnapshotError> {
    use fairnn_snapshot::SnapshotError;
    let coefficients = fairnn_snapshot::decode_pod_slice(dec, |dec| dec.read_u64())?;
    if coefficients.len() != count * 2 {
        return Err(SnapshotError::Corrupt(format!(
            "MinHash bank stores {} coefficients but {count} rows require {}",
            coefficients.len(),
            count * 2
        )));
    }
    let mut perms = Vec::with_capacity(count);
    for pair in coefficients.chunks_exact(2) {
        let (a, b) = (pair[0], pair[1]);
        if a & 1 == 0 {
            return Err(SnapshotError::Corrupt(
                "multiply-shift multiplier must be odd".into(),
            ));
        }
        perms.push(MultiplyShift::from_coefficients(a, b));
    }
    Ok(perms)
}

impl crate::snapshot::RowCodec for MinHasher {
    fn encode_rows(rows: &[Self], enc: &mut fairnn_snapshot::Encoder) {
        encode_coefficient_rows(rows.iter().map(|r| r.perm), enc);
    }

    fn decode_rows(
        dec: &mut fairnn_snapshot::Decoder<'_>,
        count: usize,
    ) -> Result<Vec<Self>, fairnn_snapshot::SnapshotError> {
        Ok(decode_coefficient_rows(dec, count)?
            .into_iter()
            .map(|perm| Self { perm })
            .collect())
    }
}

impl LshHasher<SparseSet> for MinHasher {
    fn hash(&self, point: &SparseSet) -> u64 {
        self.min_value(point)
    }

    fn hash_all(rows: &[Self], point: &SparseSet, out: &mut [u64]) {
        debug_assert_eq!(rows.len(), out.len(), "one output slot per row");
        min_values_blocked(rows, |r| r.perm, point, out);
    }
}

impl CollisionModel for MinHash {
    /// `Pr[h(A) = h(B)] = J(A, B)`.
    fn collision_probability(&self, similarity: f64) -> f64 {
        similarity.clamp(0.0, 1.0)
    }
}

impl LshFamily<SparseSet> for MinHash {
    type Hasher = MinHasher;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> MinHasher {
        MinHasher::from_seed(rng.random())
    }
}

/// The 1-bit MinHash family of Li and König, used by the paper's
/// experimental evaluation.
///
/// Keeps the least-significant bit of the MinHash value; the collision
/// probability of a single bit is `(1 + J) / 2`.
#[derive(Debug, Clone, Copy, Default)]
pub struct OneBitMinHash;

/// A single 1-bit MinHash function.
#[derive(Debug, Clone)]
pub struct OneBitMinHasher {
    inner: MinHasher,
}

impl OneBitMinHasher {
    /// Creates a 1-bit MinHash function from a seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            inner: MinHasher::from_seed(seed),
        }
    }
}

impl fairnn_snapshot::Codec for OneBitMinHasher {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.inner.encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        Ok(Self {
            inner: MinHasher::decode(dec)?,
        })
    }
}

impl crate::snapshot::RowCodec for OneBitMinHasher {
    fn encode_rows(rows: &[Self], enc: &mut fairnn_snapshot::Encoder) {
        encode_coefficient_rows(rows.iter().map(|r| r.inner.perm), enc);
    }

    fn decode_rows(
        dec: &mut fairnn_snapshot::Decoder<'_>,
        count: usize,
    ) -> Result<Vec<Self>, fairnn_snapshot::SnapshotError> {
        Ok(decode_coefficient_rows(dec, count)?
            .into_iter()
            .map(|perm| Self {
                inner: MinHasher { perm },
            })
            .collect())
    }
}

impl LshHasher<SparseSet> for OneBitMinHasher {
    fn hash(&self, point: &SparseSet) -> u64 {
        self.inner.min_value(point) & 1
    }

    fn hash_all(rows: &[Self], point: &SparseSet, out: &mut [u64]) {
        debug_assert_eq!(rows.len(), out.len(), "one output slot per row");
        // The full 64-bit minima are tracked during the pass; the 1-bit
        // truncation happens once at the end.
        min_values_blocked(rows, |r| r.inner.perm, point, out);
        for slot in out {
            *slot &= 1;
        }
    }
}

impl CollisionModel for OneBitMinHash {
    /// `Pr[bit(A) = bit(B)] = (1 + J) / 2`.
    fn collision_probability(&self, similarity: f64) -> f64 {
        (1.0 + similarity.clamp(0.0, 1.0)) / 2.0
    }
}

impl LshFamily<SparseSet> for OneBitMinHash {
    type Hasher = OneBitMinHasher;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> OneBitMinHasher {
        OneBitMinHasher::from_seed(rng.random())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn collision_rate<H, F>(family: &F, a: &SparseSet, b: &SparseSet, trials: usize) -> f64
    where
        F: LshFamily<SparseSet, Hasher = H>,
        H: LshHasher<SparseSet>,
    {
        let mut rng = StdRng::seed_from_u64(0xFEED);
        let mut collisions = 0usize;
        for _ in 0..trials {
            let h = family.sample(&mut rng);
            if h.hash(a) == h.hash(b) {
                collisions += 1;
            }
        }
        collisions as f64 / trials as f64
    }

    #[test]
    fn identical_sets_always_collide() {
        let a = SparseSet::from_items(vec![1, 5, 9, 42]);
        assert_eq!(collision_rate(&MinHash, &a, &a, 200), 1.0);
        assert_eq!(collision_rate(&OneBitMinHash, &a, &a, 200), 1.0);
    }

    #[test]
    fn minhash_collision_rate_tracks_jaccard() {
        // J = 1/3: A = {1..4}, B = {3..8} -> |A ∩ B| = 2, |A ∪ B| = 8... pick clean sets.
        let a = SparseSet::from_items((0..30).collect());
        let b = SparseSet::from_items((15..45).collect());
        let j = a.jaccard(&b); // 15 / 45 = 1/3
        assert!((j - 1.0 / 3.0).abs() < 1e-12);
        let rate = collision_rate(&MinHash, &a, &b, 4000);
        assert!(
            (rate - j).abs() < 0.05,
            "empirical collision rate {rate} far from Jaccard {j}"
        );
    }

    #[test]
    fn one_bit_minhash_collision_rate_is_half_plus_half_jaccard() {
        let a = SparseSet::from_items((0..30).collect());
        let b = SparseSet::from_items((15..45).collect());
        let expected = (1.0 + a.jaccard(&b)) / 2.0;
        let rate = collision_rate(&OneBitMinHash, &a, &b, 4000);
        assert!(
            (rate - expected).abs() < 0.05,
            "empirical rate {rate}, expected {expected}"
        );
    }

    #[test]
    fn disjoint_sets_rarely_collide_under_full_minhash() {
        let a = SparseSet::from_items((0..50).collect());
        let b = SparseSet::from_items((100..150).collect());
        let rate = collision_rate(&MinHash, &a, &b, 2000);
        assert!(rate < 0.01, "rate {rate}");
    }

    #[test]
    fn collision_model_values() {
        assert_eq!(MinHash.collision_probability(0.25), 0.25);
        assert_eq!(MinHash.collision_probability(2.0), 1.0);
        assert_eq!(OneBitMinHash.collision_probability(0.0), 0.5);
        assert_eq!(OneBitMinHash.collision_probability(1.0), 1.0);
        assert_eq!(OneBitMinHash.collision_probability(0.2), 0.6);
    }

    #[test]
    fn rho_is_less_than_one_for_separated_thresholds() {
        let rho = MinHash.rho(0.5, 0.1);
        assert!(rho > 0.0 && rho < 1.0, "rho = {rho}");
        let rho_bit = OneBitMinHash.rho(0.5, 0.1);
        assert!(rho_bit > 0.0 && rho_bit < 1.0, "rho = {rho_bit}");
    }

    #[test]
    fn empty_set_hashes_consistently() {
        let h = MinHasher::from_seed(7);
        let empty = SparseSet::new();
        assert_eq!(h.min_value(&empty), u64::MAX);
        assert_eq!(h.hash(&empty), u64::MAX);
        let hb = OneBitMinHasher::from_seed(7);
        assert_eq!(hb.hash(&empty), 1); // LSB of u64::MAX
    }

    #[test]
    fn one_bit_output_is_a_single_bit() {
        let mut rng = StdRng::seed_from_u64(3);
        let set = SparseSet::from_items(vec![2, 4, 8, 16]);
        for _ in 0..50 {
            let h = OneBitMinHash.sample(&mut rng);
            assert!(h.hash(&set) <= 1);
        }
    }

    #[test]
    fn scalar_and_simd_kernels_agree() {
        // On hardware with AVX-512DQ this compares the lane kernel against
        // the scalar one bit for bit; elsewhere it degenerates to scalar ==
        // scalar and only exercises the dispatch plumbing.
        let mut rng = StdRng::seed_from_u64(0xB10C);
        for trial in 0..50 {
            let rows: Vec<MinHasher> = (0..MIN_BLOCK).map(|_| MinHash.sample(&mut rng)).collect();
            let coeff: [(u64, u64); MIN_BLOCK] =
                std::array::from_fn(|j| rows[j].perm.coefficients());
            let items: Vec<u32> = (0..(trial % 40)).map(|_| rng.random()).collect();
            let set = SparseSet::from_items(items);
            let mut scalar = [u64::MAX; MIN_BLOCK];
            min_block_scalar(&coeff, set.items(), &mut scalar);
            let mut dispatched = [u64::MAX; MIN_BLOCK];
            fairnn_snapshot::dispatch_x86_feature!(
                ["avx512f", "avx512dq", "avx2"],
                kernel::min_block_avx512(&coeff, set.items(), &mut dispatched),
                min_block_scalar(&coeff, set.items(), &mut dispatched)
            );
            assert_eq!(scalar, dispatched, "trial {trial}");
            // And both match the definitional one-row-at-a-time path.
            for (j, row) in rows.iter().enumerate() {
                assert_eq!(scalar[j], row.min_value(&set), "trial {trial} row {j}");
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = SparseSet::from_items(vec![3, 14, 15, 92]);
        let h1 = MinHasher::from_seed(99);
        let h2 = MinHasher::from_seed(99);
        assert_eq!(h1.hash(&a), h2.hash(&a));
        let d = MinHasher::from_seed(100);
        // Different seeds need not differ on one input, but the min values
        // should differ on at least one of a few sets.
        let sets: Vec<SparseSet> = (0..10)
            .map(|i| SparseSet::from_items((i..i + 20).collect()))
            .collect();
        assert!(sets.iter().any(|s| h1.hash(s) != d.hash(s)));
    }
}
