//! p-stable LSH (Datar–Immorlica–Indyk–Mirrokni) for Euclidean distance.
//!
//! A hasher projects the point onto a random Gaussian direction, adds a
//! uniform offset and quantises into buckets of width `w`:
//! `h(x) = ⌊(⟨a, x⟩ + b) / w⌋`. The collision probability of two points at
//! Euclidean distance `d` is
//! `p(d) = 1 − 2Φ(−w/d) − (2d / (√(2π) w)) (1 − e^{−w²/(2d²)})`,
//! a decreasing function of `d` — making the family `(r, cr, p1, p2)`-
//! sensitive for any `r < cr`.
//!
//! The paper's experiments use MinHash, but the black-box constructions of
//! Sections 3 and 4 work with any LSH family; this family is what plugging
//! the data structures into Euclidean workloads looks like, and it is used
//! by the benchmark suite's Euclidean scenarios.

use crate::family::{CollisionModel, LshFamily, LshHasher};
use crate::gaussian::{gaussian_vector, normal_cdf};
use fairnn_space::DenseVector;
use rand::Rng;

/// The Gaussian (2-stable) projection family with bucket width `w`.
#[derive(Debug, Clone, Copy)]
pub struct PStableLsh {
    dim: usize,
    width: f64,
}

impl PStableLsh {
    /// Creates the family for `dim`-dimensional vectors with bucket width
    /// `width > 0`.
    pub fn new(dim: usize, width: f64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(width > 0.0, "bucket width must be positive");
        Self { dim, width }
    }

    /// Bucket width `w`.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Dimensionality of the vectors this family hashes.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// A single p-stable hash function.
#[derive(Debug, Clone)]
pub struct PStableHasher {
    direction: DenseVector,
    offset: f64,
    width: f64,
}

impl PStableHasher {
    /// Creates a hasher with an explicit projection direction and offset
    /// (mainly for tests).
    pub fn with_parts(direction: DenseVector, offset: f64, width: f64) -> Self {
        assert!(width > 0.0, "bucket width must be positive");
        Self {
            direction,
            offset,
            width,
        }
    }

    /// The raw (un-quantised) projection value.
    pub fn projection(&self, point: &DenseVector) -> f64 {
        self.direction.dot(point) + self.offset
    }
}

impl fairnn_snapshot::Codec for PStableHasher {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.direction.encode(enc);
        enc.write_f64(self.offset);
        enc.write_f64(self.width);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        let direction = DenseVector::decode(dec)?;
        let offset = dec.read_f64()?;
        let width = dec.read_f64()?;
        if !width.is_finite() || width <= 0.0 {
            return Err(fairnn_snapshot::SnapshotError::Corrupt(format!(
                "p-stable bucket width must be positive, found {width}"
            )));
        }
        Ok(Self {
            direction,
            offset,
            width,
        })
    }
}

/// Row-at-a-time bank serialization (the default): each row carries a
/// variable-width projection vector, so there is no fixed-stride bulk form.
impl crate::snapshot::RowCodec for PStableHasher {}

impl LshHasher<DenseVector> for PStableHasher {
    fn hash(&self, point: &DenseVector) -> u64 {
        let bucket = (self.projection(point) / self.width).floor() as i64;
        // Map the signed bucket index to u64 preserving equality.
        bucket as u64
    }

    /// Blocked matrix–vector evaluation via
    /// `crate::gaussian::blocked_projection_hash`: eight projections
    /// advance per coordinate load. The offset is added after the full dot
    /// product and the quantisation matches [`PStableHasher::hash`]
    /// operation for operation, so the bucket keys are bit-identical to the
    /// per-row path.
    fn hash_all(rows: &[Self], point: &DenseVector, out: &mut [u64]) {
        crate::gaussian::blocked_projection_hash(
            rows,
            point,
            |row| &row.direction,
            |dot, row| (((dot + row.offset) / row.width).floor() as i64) as u64,
            out,
        );
    }
}

impl CollisionModel for PStableLsh {
    /// Collision probability as a function of the **Euclidean distance** `d`.
    fn collision_probability(&self, distance: f64) -> f64 {
        if distance <= 0.0 {
            return 1.0;
        }
        let ratio = self.width / distance;
        let term1 = 1.0 - 2.0 * normal_cdf(-ratio);
        let term2 = (2.0 / ((2.0 * std::f64::consts::PI).sqrt() * ratio))
            * (1.0 - (-ratio * ratio / 2.0).exp());
        (term1 - term2).clamp(0.0, 1.0)
    }
}

impl LshFamily<DenseVector> for PStableLsh {
    type Hasher = PStableHasher;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> PStableHasher {
        PStableHasher {
            direction: gaussian_vector(rng, self.dim),
            offset: rng.random::<f64>() * self.width,
            width: self.width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_points_always_collide() {
        let mut rng = StdRng::seed_from_u64(1);
        let family = PStableLsh::new(4, 2.0);
        let p = DenseVector::new(vec![0.1, -0.4, 2.0, 0.0]);
        for _ in 0..50 {
            let h = family.sample(&mut rng);
            assert_eq!(h.hash(&p), h.hash(&p));
        }
        assert_eq!(family.collision_probability(0.0), 1.0);
    }

    #[test]
    fn collision_probability_is_decreasing_in_distance() {
        let family = PStableLsh::new(8, 4.0);
        let distances = [0.1, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
        for w in distances.windows(2) {
            assert!(
                family.collision_probability(w[0]) >= family.collision_probability(w[1]),
                "not decreasing between {} and {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn empirical_collision_rate_matches_model() {
        let family = PStableLsh::new(3, 4.0);
        let p = DenseVector::new(vec![0.0, 0.0, 0.0]);
        let q = DenseVector::new(vec![2.0, 0.0, 0.0]); // distance 2
        let expected = family.collision_probability(2.0);
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 8000;
        let mut collisions = 0;
        for _ in 0..trials {
            let h = family.sample(&mut rng);
            if h.hash(&p) == h.hash(&q) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        assert!(
            (rate - expected).abs() < 0.03,
            "rate {rate}, expected {expected}"
        );
    }

    #[test]
    fn hasher_with_explicit_parts_buckets_correctly() {
        let h = PStableHasher::with_parts(DenseVector::new(vec![1.0, 0.0]), 0.5, 1.0);
        assert_eq!(h.hash(&DenseVector::new(vec![0.0, 3.0])), 0); // 0.5 -> bucket 0
        assert_eq!(h.hash(&DenseVector::new(vec![0.6, 3.0])), 1); // 1.1 -> bucket 1
        let below = h.hash(&DenseVector::new(vec![-1.0, 0.0])); // -0.5 -> bucket -1
        assert_eq!(below, (-1i64) as u64);
        assert!((h.projection(&DenseVector::new(vec![0.0, 0.0])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rho_in_unit_interval() {
        let family = PStableLsh::new(16, 4.0);
        let rho = family.rho(1.0, 2.0);
        assert!(rho > 0.0 && rho < 1.0, "rho = {rho}");
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn zero_width_rejected() {
        let _ = PStableLsh::new(4, 0.0);
    }

    #[test]
    fn accessors() {
        let family = PStableLsh::new(7, 3.5);
        assert_eq!(family.dim(), 7);
        assert_eq!(family.width(), 3.5);
    }
}
