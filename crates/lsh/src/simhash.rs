//! SimHash (random hyperplane) LSH for angular / inner-product similarity.
//!
//! Charikar's random hyperplane scheme \[13\]: draw a Gaussian vector `a`
//! and hash a point to the sign of `⟨a, x⟩`. Two unit vectors with angle `θ`
//! collide with probability `1 − θ/π`. For unit vectors with inner product
//! `s`, `θ = arccos(s)`, so the collision probability is a monotone
//! increasing function of the inner product — the property the fair samplers
//! need when run over the inner-product space of Section 5.

use crate::family::{CollisionModel, LshFamily, LshHasher};
use crate::gaussian::gaussian_vector;
use fairnn_space::DenseVector;
use rand::Rng;

/// The random-hyperplane family for `dim`-dimensional vectors.
#[derive(Debug, Clone, Copy)]
pub struct SimHash {
    dim: usize,
}

impl SimHash {
    /// Creates the family for vectors of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self { dim }
    }

    /// Dimensionality of the vectors this family hashes.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// A single random-hyperplane hash function.
#[derive(Debug, Clone)]
pub struct SimHasher {
    normal: DenseVector,
}

impl SimHasher {
    /// Creates a hasher from an explicit hyperplane normal (mainly for
    /// tests).
    pub fn with_normal(normal: DenseVector) -> Self {
        Self { normal }
    }
}

impl fairnn_snapshot::Codec for SimHasher {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.normal.encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        Ok(Self {
            normal: DenseVector::decode(dec)?,
        })
    }
}

/// Row-at-a-time bank serialization (the default): each row carries a
/// variable-width projection vector, so there is no fixed-stride bulk form.
impl crate::snapshot::RowCodec for SimHasher {}

impl LshHasher<DenseVector> for SimHasher {
    fn hash(&self, point: &DenseVector) -> u64 {
        u64::from(self.normal.dot(point) >= 0.0)
    }

    /// Blocked matrix–vector evaluation via
    /// `crate::gaussian::blocked_projection_hash`: eight dot products
    /// advance per coordinate load, and the signs — and therefore the
    /// hashes — are bit-identical to the per-row path.
    fn hash_all(rows: &[Self], point: &DenseVector, out: &mut [u64]) {
        crate::gaussian::blocked_projection_hash(
            rows,
            point,
            |row| &row.normal,
            |dot, _| u64::from(dot >= 0.0),
            out,
        );
    }
}

impl CollisionModel for SimHash {
    /// Collision probability as a function of the **cosine/inner-product
    /// similarity** `s` of two unit vectors: `1 − arccos(s)/π`.
    fn collision_probability(&self, similarity: f64) -> f64 {
        let s = similarity.clamp(-1.0, 1.0);
        1.0 - s.acos() / std::f64::consts::PI
    }
}

impl LshFamily<DenseVector> for SimHash {
    type Hasher = SimHasher;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimHasher {
        SimHasher {
            normal: gaussian_vector(rng, self.dim),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hash_is_zero_or_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let family = SimHash::new(8);
        assert_eq!(family.dim(), 8);
        let p = DenseVector::new(vec![1.0; 8]);
        for _ in 0..20 {
            let h = family.sample(&mut rng);
            assert!(h.hash(&p) <= 1);
        }
    }

    #[test]
    fn identical_vectors_always_collide() {
        let mut rng = StdRng::seed_from_u64(2);
        let family = SimHash::new(5);
        let p = DenseVector::new(vec![0.3, -0.2, 0.9, 0.0, 0.1]);
        for _ in 0..100 {
            let h = family.sample(&mut rng);
            assert_eq!(h.hash(&p), h.hash(&p));
        }
    }

    #[test]
    fn opposite_vectors_never_collide() {
        let p = DenseVector::new(vec![1.0, 2.0, -1.0]);
        let q = DenseVector::new(vec![-1.0, -2.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let family = SimHash::new(3);
        let mut collisions = 0;
        for _ in 0..500 {
            let h = family.sample(&mut rng);
            if h.hash(&p) == h.hash(&q) {
                collisions += 1;
            }
        }
        // The hyperplane through the origin separates antipodal points except
        // in the measure-zero event that both dot products are exactly zero;
        // the sign convention (>= 0) can create rare boundary agreements.
        assert!(collisions <= 2, "collisions = {collisions}");
    }

    #[test]
    fn collision_rate_matches_angular_model() {
        let family = SimHash::new(2);
        // Unit vectors at 60 degrees: inner product 0.5.
        let p = DenseVector::new(vec![1.0, 0.0]);
        let q = DenseVector::new(vec![0.5, 3f64.sqrt() / 2.0]);
        let expected = family.collision_probability(0.5); // 1 - 60/180 = 2/3
        assert!((expected - 2.0 / 3.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 6000;
        let mut collisions = 0;
        for _ in 0..trials {
            let h = family.sample(&mut rng);
            if h.hash(&p) == h.hash(&q) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        assert!(
            (rate - expected).abs() < 0.03,
            "rate {rate}, expected {expected}"
        );
    }

    #[test]
    fn explicit_normal_hasher() {
        let h = SimHasher::with_normal(DenseVector::new(vec![1.0, 0.0]));
        assert_eq!(h.hash(&DenseVector::new(vec![0.5, 9.0])), 1);
        assert_eq!(h.hash(&DenseVector::new(vec![-0.5, 9.0])), 0);
    }

    #[test]
    fn rho_reasonable_for_inner_product_thresholds() {
        let family = SimHash::new(16);
        let rho = family.rho(0.9, 0.1);
        assert!(rho > 0.0 && rho < 1.0, "rho = {rho}");
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dimension_rejected() {
        let _ = SimHash::new(0);
    }
}
