//! Standard normal sampling helpers.
//!
//! Both the p-stable Euclidean LSH family and the concomitant filter
//! structure of Section 5 need i.i.d. `N(0, 1)` Gaussian vectors. To stay
//! within the approved dependency set (no `rand_distr`), normals are drawn
//! with the Box–Muller transform.

use fairnn_space::DenseVector;
use rand::Rng;

/// Draws one standard normal variate using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a vector of `dim` i.i.d. standard normals.
pub fn gaussian_vector<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> DenseVector {
    DenseVector::new((0..dim).map(|_| standard_normal(rng)).collect())
}

/// Shared blocked matrix–vector kernel behind the batched (`hash_all`)
/// evaluation of the projection-based families (SimHash, p-stable).
///
/// Rows are processed in blocks of eight; within a block each coordinate of
/// the point is loaded once and feeds all eight running dot products, giving
/// the instruction-level parallelism a row-at-a-time loop lacks. Per row the
/// additions happen in the same coordinate order as [`DenseVector::dot`], so
/// `finish(dot, row)` sees a bit-identical dot product and the hashes match
/// the per-row path exactly. The per-row path's dimension check
/// (`DenseVector::dot` asserts) is mirrored here so a malformed query panics
/// instead of silently hashing a truncated projection.
pub(crate) fn blocked_projection_hash<T>(
    rows: &[T],
    point: &DenseVector,
    direction: impl Fn(&T) -> &DenseVector,
    finish: impl Fn(f64, &T) -> u64,
    out: &mut [u64],
) {
    const BLOCK: usize = 8;
    debug_assert_eq!(rows.len(), out.len(), "one output slot per row");
    let coords = point.values();
    for (row_block, out_block) in rows.chunks(BLOCK).zip(out.chunks_mut(BLOCK)) {
        for row in row_block {
            assert_eq!(
                direction(row).dim(),
                point.dim(),
                "dimension mismatch in dot product"
            );
        }
        let mut acc = [0.0f64; BLOCK];
        for (d, &x) in coords.iter().enumerate() {
            for (sum, row) in acc.iter_mut().zip(row_block) {
                *sum += direction(row).values()[d] * x;
            }
        }
        for ((slot, sum), row) in out_block.iter_mut().zip(acc).zip(row_block) {
            *slot = finish(sum, row);
        }
    }
}

/// Draws a uniformly random point on the unit sphere in `dim` dimensions
/// (a normalised Gaussian vector).
pub fn random_unit_vector<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> DenseVector {
    loop {
        let v = gaussian_vector(rng, dim);
        if v.norm() > 1e-12 {
            return v.normalized();
        }
    }
}

/// Standard normal cumulative distribution function Φ(x), computed from the
/// complementary error function (Abramowitz–Stegun 7.1.26 rational
/// approximation; absolute error below 1.5e-7, ample for parameter
/// selection and tests).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc_approx(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function approximation.
fn erfc_approx(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normals_have_roughly_zero_mean_and_unit_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn gaussian_vector_has_requested_dim() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = gaussian_vector(&mut rng, 17);
        assert_eq!(v.dim(), 17);
    }

    #[test]
    fn random_unit_vectors_are_unit_length() {
        let mut rng = StdRng::seed_from_u64(3);
        for dim in [2usize, 5, 50] {
            let v = random_unit_vector(&mut rng, dim);
            assert!(v.is_unit(1e-9), "norm = {}", v.norm());
        }
    }

    #[test]
    fn normal_cdf_matches_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.0) - 0.841_344_75).abs() < 1e-5);
        assert!((normal_cdf(-1.0) - 0.158_655_25).abs() < 1e-5);
        assert!((normal_cdf(1.959_96) - 0.975).abs() < 1e-4);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn normal_cdf_is_monotone() {
        let xs: Vec<f64> = (-40..=40).map(|i| i as f64 / 10.0).collect();
        for w in xs.windows(2) {
            assert!(normal_cdf(w[0]) <= normal_cdf(w[1]) + 1e-12);
        }
    }
}
