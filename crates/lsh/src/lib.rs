//! Locality-sensitive hashing (LSH) substrate.
//!
//! The paper's fair samplers use LSH as a black box (Sections 3 and 4): a
//! family of hash functions is *(r, cr, p1, p2)-sensitive* if near points
//! (distance ≤ r, or similarity ≥ r) collide with probability at least `p1`
//! and far points (distance > cr, similarity < cr) collide with probability
//! at most `p2` (Definition 3). Concatenating `K` functions drives `p2`
//! below `1/n`; repeating the table `L = Θ(p1^{-K} log n)` times makes every
//! near point collide with the query at least once with high probability.
//!
//! This crate implements:
//!
//! * the family abstraction ([`LshFamily`], [`LshHasher`]) together with the
//!   collision-probability model each family exposes, which drives parameter
//!   selection the same way Section 6 of the paper does;
//! * concrete families: [`minhash::MinHash`] and
//!   [`minhash::OneBitMinHash`] for Jaccard similarity (the scheme used in
//!   the paper's experiments, following Broder and Li–König),
//!   [`simhash::SimHash`] (random hyperplanes) for angular/inner-product
//!   similarity, and [`pstable::PStableLsh`] (Gaussian projections with
//!   quantisation) for Euclidean distance;
//! * AND-concatenation over `K` rows ([`concat::ConcatenatedHasher`]),
//!   including the shared table-major row bank behind the single-pass
//!   batched evaluation ([`family::LshHasher::hash_all`]);
//! * the multi-table index ([`table::LshIndex`]) that stores the dataset
//!   once per repetition and answers collision queries, with a frozen CSR
//!   bucket layout ([`frozen::FrozenTable`]) for reads and the `HashMap`
//!   staging form for incremental updates;
//! * reusable per-query scratch ([`scratch::QueryScratch`]) so the query
//!   hot path is allocation-free in the steady state;
//! * parameter selection helpers ([`params`]) mirroring the choices of
//!   Section 6 (expected number of far collisions ≈ 5, recall ≥ 99 %).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concat;
pub mod family;
pub mod frozen;
pub mod gaussian;
pub mod minhash;
pub mod params;
pub mod pstable;
pub mod scratch;
pub mod simhash;
pub mod snapshot;
pub mod table;

pub use concat::{ConcatenatedFamily, ConcatenatedHasher};
pub use family::{CollisionModel, LshFamily, LshHasher};
pub use frozen::FrozenTable;
pub use minhash::{MinHash, MinHasher, OneBitMinHash, OneBitMinHasher};
pub use params::{LshParams, ParamsBuilder};
pub use pstable::{PStableHasher, PStableLsh};
pub use scratch::{DistanceMemo, QueryScratch, VisitedSet};
pub use simhash::{SimHash, SimHasher};
pub use snapshot::HasherBankCodec;
pub use table::{LshIndex, LshTable};
