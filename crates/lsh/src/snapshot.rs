//! Snapshot support for the LSH substrate.
//!
//! Most types here implement [`fairnn_snapshot::Codec`] next to their
//! definition (they have private fields); this module holds the one
//! abstraction the index codec needs on top: [`HasherBankCodec`],
//! slice-level hasher serialization.
//!
//! An [`crate::LshIndex`] does not store `L` independent hashers — it stores
//! `L` views into one shared, table-major row bank
//! ([`crate::ConcatenatedHasher::bank`]), which is what makes the batched
//! single-pass query evaluation possible. Serializing the hashers one by one
//! would write every row once but *load* them into `L` separate allocations,
//! silently losing the single-pass layout. [`HasherBankCodec`] serializes
//! the whole slice at once: when the hashers share a bank the rows are
//! written flat and the bank is reconstituted on load, so a loaded index has
//! the exact memory layout — and therefore the exact performance — of a
//! freshly built one.

use fairnn_snapshot::{Codec, Decoder, Encoder, SnapshotError};

/// Slice-level hasher serialization (see the module docs for why this is
/// not simply `Codec` on the hasher type).
pub trait HasherBankCodec: Sized {
    /// Encodes a slice of per-table hashers, preserving bank sharing.
    fn encode_bank(hashers: &[Self], enc: &mut Encoder);

    /// Decodes a slice written by [`HasherBankCodec::encode_bank`],
    /// reconstructing the shared bank layout when one was written.
    fn decode_bank(dec: &mut Decoder<'_>) -> Result<Vec<Self>, SnapshotError>;
}

/// Row-level bulk serialization inside a shared hasher bank.
///
/// The default methods serialize rows one [`Codec`] value at a time, which
/// is right for hashers carrying variable-width state (projection vectors).
/// Fixed-coefficient families (the MinHash family: each row is a full-width
/// multiply-shift `(a, b)` pair) override them to write the whole bank as
/// one 64-byte-aligned coefficient array — the snapshot-v3 layout that a
/// loaded [`fairnn_snapshot::SnapshotImage`] reads back through a zero-copy
/// [`fairnn_snapshot::ArcSlice`] view before materializing the in-memory
/// bank in a single pass.
pub trait RowCodec: Codec {
    /// Encodes `rows` (the flat table-major bank, each row exactly once).
    fn encode_rows(rows: &[Self], enc: &mut Encoder) {
        for row in rows {
            row.encode(enc);
        }
    }

    /// Decodes `count` rows written by [`RowCodec::encode_rows`].
    fn decode_rows(dec: &mut Decoder<'_>, count: usize) -> Result<Vec<Self>, SnapshotError> {
        let mut rows = Vec::with_capacity(count.min(dec.remaining()));
        for _ in 0..count {
            rows.push(Self::decode(dec)?);
        }
        Ok(rows)
    }
}
