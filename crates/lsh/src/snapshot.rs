//! Snapshot support for the LSH substrate.
//!
//! Most types here implement [`fairnn_snapshot::Codec`] next to their
//! definition (they have private fields); this module holds the one
//! abstraction the index codec needs on top: [`HasherBankCodec`],
//! slice-level hasher serialization.
//!
//! An [`crate::LshIndex`] does not store `L` independent hashers — it stores
//! `L` views into one shared, table-major row bank
//! ([`crate::ConcatenatedHasher::bank`]), which is what makes the batched
//! single-pass query evaluation possible. Serializing the hashers one by one
//! would write every row once but *load* them into `L` separate allocations,
//! silently losing the single-pass layout. [`HasherBankCodec`] serializes
//! the whole slice at once: when the hashers share a bank the rows are
//! written flat and the bank is reconstituted on load, so a loaded index has
//! the exact memory layout — and therefore the exact performance — of a
//! freshly built one.

use fairnn_snapshot::{Decoder, Encoder, SnapshotError};

/// Slice-level hasher serialization (see the module docs for why this is
/// not simply `Codec` on the hasher type).
pub trait HasherBankCodec: Sized {
    /// Encodes a slice of per-table hashers, preserving bank sharing.
    fn encode_bank(hashers: &[Self], enc: &mut Encoder);

    /// Decodes a slice written by [`HasherBankCodec::encode_bank`],
    /// reconstructing the shared bank layout when one was written.
    fn decode_bank(dec: &mut Decoder<'_>) -> Result<Vec<Self>, SnapshotError>;
}
