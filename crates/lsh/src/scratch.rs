//! Reusable per-query scratch space.
//!
//! The reference-style query path allocated on every call: a `Vec<u64>` of
//! bucket keys, an `O(n)` `vec![false; n]` visited array, and a candidate
//! vector. [`QueryScratch`] owns all three so a sampler (or a worker thread)
//! pays for them once and reuses them for every subsequent query;
//! [`VisitedSet`] replaces the boolean array with an epoch-stamped buffer
//! that resets in `O(1)` instead of `O(n)`.

use fairnn_space::PointId;

/// An epoch-stamped visited set over dense indices `0..n`.
///
/// `reset(n)` bumps the epoch instead of clearing the buffer, so starting a
/// new query costs `O(1)` once the buffer has grown to `n`. On the (once per
/// `u32::MAX` queries) epoch wrap the buffer is zeroed to keep stale stamps
/// from aliasing the new epoch.
#[derive(Debug, Clone, Default)]
pub struct VisitedSet {
    epoch: u32,
    stamps: Vec<u32>,
}

impl VisitedSet {
    /// An empty visited set. Call [`VisitedSet::reset`] before the first
    /// insertion.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new query over indices `0..n`: grows the buffer if needed
    /// and advances the epoch, invalidating every previous stamp.
    pub fn reset(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(epoch) => epoch,
            None => {
                self.stamps.fill(0);
                1
            }
        };
    }

    /// Marks `index` as visited. Returns `true` when it was not yet visited
    /// in the current epoch.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        let stamp = &mut self.stamps[index];
        if *stamp == self.epoch {
            false
        } else {
            *stamp = self.epoch;
            true
        }
    }

    /// Whether `index` has been visited in the current epoch.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        self.stamps.get(index).is_some_and(|&s| s == self.epoch)
    }
}

/// An epoch-stamped memo of per-point predicate results (near / not near)
/// for the current query.
///
/// A multi-table LSH query meets the same point in many buckets — a cluster
/// member collides with the query in most of the `L` tables — and the
/// distance predicate (a Jaccard merge, a dot product) is far more expensive
/// than a lookup. Memoizing per query caps the predicate evaluations at one
/// per *distinct* candidate without changing any outcome: the predicate is
/// a pure function of (query, point).
#[derive(Debug, Clone, Default)]
pub struct DistanceMemo {
    epoch: u32,
    stamps: Vec<u32>,
    near: Vec<bool>,
}

impl DistanceMemo {
    /// An empty memo. Call [`DistanceMemo::reset`] before the first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new query over indices `0..n` in `O(1)` (amortised).
    pub fn reset(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
            self.near.resize(n, false);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(epoch) => epoch,
            None => {
                self.stamps.fill(0);
                1
            }
        };
    }

    /// The memoized result for `index` in the current epoch, if any.
    #[inline]
    pub fn get(&self, index: usize) -> Option<bool> {
        (self.stamps[index] == self.epoch).then(|| self.near[index])
    }

    /// Memoizes `is_near` for `index` and returns it.
    #[inline]
    pub fn set(&mut self, index: usize, is_near: bool) -> bool {
        self.stamps[index] = self.epoch;
        self.near[index] = is_near;
        is_near
    }

    /// The memoized result, computing and storing it on a miss.
    #[inline]
    pub fn get_or_insert_with(&mut self, index: usize, compute: impl FnOnce() -> bool) -> bool {
        match self.get(index) {
            Some(is_near) => is_near,
            None => self.set(index, compute()),
        }
    }
}

/// Per-query scratch buffers, reused across queries so the steady-state hot
/// path performs no heap allocation.
///
/// Samplers own one (they take `&mut self` per query); the engine's worker
/// threads keep one per thread. All buffers are plain storage — no query
/// state survives from one call to the next beyond capacity.
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    /// Per-table bucket keys of the current query (filled by
    /// [`crate::LshIndex::query_keys_into`] /
    /// [`crate::LshHasher::hash_all`]).
    pub keys: Vec<u64>,
    /// Cross-table deduplication of scanned point ids.
    pub visited: VisitedSet,
    /// Candidate / result accumulator.
    pub candidates: Vec<PointId>,
    /// Small index accumulator (table visiting orders, per-table bucket
    /// indices and similar).
    pub indices: Vec<u32>,
    /// Per-query memo of distance-predicate results.
    pub memo: DistanceMemo,
    /// Floating-point accumulator (sketch estimate medians and similar).
    pub floats: Vec<f64>,
}

impl QueryScratch {
    /// Empty scratch; buffers grow to steady-state size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the bucket keys of `point` under every hasher in `hashers`
    /// into the reused `keys` buffer — one batched
    /// [`crate::LshHasher::hash_all`] pass, sized to `hashers.len()`. The
    /// samplers that hold bare hasher slices (rather than an
    /// [`crate::LshIndex`]) share this as their keys-computation step.
    pub fn compute_keys<P, H: crate::LshHasher<P>>(&mut self, hashers: &[H], point: &P) {
        self.keys.clear();
        self.keys.resize(hashers.len(), 0);
        H::hash_all(hashers, point, &mut self.keys);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visited_set_tracks_per_epoch() {
        let mut visited = VisitedSet::new();
        visited.reset(4);
        assert!(visited.insert(1));
        assert!(!visited.insert(1), "second insert is a duplicate");
        assert!(visited.contains(1));
        assert!(!visited.contains(0));
        visited.reset(4);
        assert!(!visited.contains(1), "reset invalidates previous epoch");
        assert!(visited.insert(1));
    }

    #[test]
    fn visited_set_grows_monotonically() {
        let mut visited = VisitedSet::new();
        visited.reset(2);
        assert!(visited.insert(0));
        visited.reset(10);
        assert!(visited.insert(9));
        assert!(!visited.contains(0));
        // Shrinking the logical range keeps the larger buffer.
        visited.reset(1);
        assert!(visited.insert(0));
    }

    #[test]
    fn visited_set_survives_epoch_wrap() {
        let mut visited = VisitedSet {
            epoch: u32::MAX - 1,
            stamps: vec![u32::MAX - 1; 3],
        };
        // Everything is "visited" at the current epoch.
        assert!(visited.contains(0));
        visited.reset(3); // epoch -> MAX
        assert!(visited.insert(0));
        visited.reset(3); // wrap: buffer zeroed, epoch -> 1
        assert!(!visited.contains(0), "stale stamps must not alias");
        assert!(visited.insert(0));
        assert!(!visited.insert(0));
    }

    #[test]
    fn distance_memo_caches_per_epoch() {
        let mut memo = DistanceMemo::new();
        memo.reset(3);
        assert_eq!(memo.get(0), None);
        let mut evaluations = 0;
        let near = memo.get_or_insert_with(0, || {
            evaluations += 1;
            true
        });
        assert!(near);
        assert!(memo.get_or_insert_with(0, || unreachable!("memoized")));
        assert_eq!(evaluations, 1);
        assert_eq!(memo.get(0), Some(true));
        assert!(!memo.set(1, false));
        assert_eq!(memo.get(1), Some(false));
        memo.reset(3);
        assert_eq!(memo.get(0), None, "reset invalidates the memo");
    }

    #[test]
    fn distance_memo_survives_epoch_wrap() {
        let mut memo = DistanceMemo {
            epoch: u32::MAX,
            stamps: vec![u32::MAX; 2],
            near: vec![true; 2],
        };
        assert_eq!(memo.get(0), Some(true));
        memo.reset(2); // wrap: stamps zeroed, epoch -> 1
        assert_eq!(memo.get(0), None, "stale stamps must not alias");
    }

    #[test]
    fn contains_is_false_out_of_range() {
        let mut visited = VisitedSet::new();
        visited.reset(2);
        assert!(!visited.contains(100));
    }

    #[test]
    fn scratch_is_plain_reusable_storage() {
        let mut scratch = QueryScratch::new();
        scratch.keys.push(7);
        scratch.candidates.push(PointId(3));
        scratch.indices.push(1);
        scratch.visited.reset(2);
        assert!(scratch.visited.insert(0));
        let clone = scratch.clone();
        assert_eq!(clone.keys, vec![7]);
        assert_eq!(clone.candidates, vec![PointId(3)]);
    }
}
