//! LSH hash tables and the multi-table index.
//!
//! The standard LSH data structure of Section 2.2 keeps `L` hash tables;
//! table `i` partitions the dataset into buckets by the value of the `i`-th
//! (concatenated) hash function. A query retrieves, for each table, the
//! bucket its own hash value falls into, and inspects the points inside.
//!
//! [`LshIndex`] is that structure. The fair samplers of `fairnn-core` build
//! on top of it: Section 3 re-sorts each bucket by rank, Section 4
//! additionally attaches a count-distinct sketch and a rank index to each
//! bucket. To support this, the index exposes its tables, buckets and
//! per-table query keys rather than only a flat "candidates" list.

use crate::concat::ConcatenatedHasher;
use crate::family::{LshFamily, LshHasher};
use crate::frozen::FrozenTable;
use crate::params::LshParams;
use crate::scratch::QueryScratch;
use fairnn_obs::{HistogramShard, LazyHistogram, Timer};
use fairnn_space::PointId;
use rand::Rng;
use std::cell::RefCell;
use std::collections::HashMap;

/// Bucket-size distribution, recorded at [`LshTable::freeze`] time (one
/// observation per non-empty bucket). The tail of this histogram is what
/// drives worst-case query cost and the fair samplers' rejection rates.
static BUCKET_SIZE: LazyHistogram = LazyHistogram::new(
    "lsh_bucket_size",
    "bucket sizes observed when tables freeze (entries per non-empty bucket)",
);

/// Wall time of one batched `K x L` hash-bank evaluation — one observation
/// per hashed point, so mean(= sum/count) is the hash-bank ns/point figure
/// the benches track.
static HASH_BANK_NS: LazyHistogram = LazyHistogram::new(
    "lsh_hash_bank_ns",
    "batched K x L hash-bank evaluation time per point in nanoseconds",
);

thread_local! {
    /// Per-thread scratch for the convenience query methods
    /// ([`LshIndex::colliding_ids`] and friends), which take `&self` and
    /// therefore cannot own reusable buffers. Hot paths that already hold a
    /// [`QueryScratch`] use the `_into` variants instead.
    static INDEX_SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch::new());
}

/// A single hash table: bucket key → ids of the points in the bucket.
///
/// The table has two representations. While it is being built or mutated it
/// is a `HashMap<u64, Vec<PointId>>` — the *staging* form, cheap to update.
/// [`LshTable::freeze`] converts it into a [`FrozenTable`] — sorted keys,
/// CSR offsets, one contiguous entry array — which is what queries should
/// run against. Mutating a frozen table thaws it back to staging
/// transparently (an `O(entries)` conversion, amortised over the following
/// updates); [`LshIndex`] re-freezes on [`LshIndex::rebuild`] and exposes
/// [`LshIndex::freeze`] for explicit compaction after a burst of updates.
/// Freezing and thawing preserve per-bucket entry order bit-for-bit, which
/// the fair samplers' determinism depends on.
#[derive(Debug, Clone, Default)]
pub struct LshTable {
    staging: HashMap<u64, Vec<PointId>>,
    frozen: Option<FrozenTable<PointId>>,
}

impl LshTable {
    /// Creates an empty table (in staging form).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the table is currently in its read-optimized frozen form.
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// Converts the table to its read-optimized frozen form. No-op if
    /// already frozen.
    pub fn freeze(&mut self) {
        if self.frozen.is_none() {
            // fairnn-audit: allow(unordered-iter) — from_buckets key-sorts the drained pairs
            let frozen = FrozenTable::from_buckets(self.staging.drain());
            if fairnn_obs::enabled() {
                // Shard locally, merge once: tables freeze on parallel
                // build workers, and per-bucket atomic adds would serialize
                // them on the histogram cache lines.
                let mut sizes = HistogramShard::new();
                for (_, bucket) in frozen.buckets() {
                    sizes.record(bucket.len() as u64);
                }
                BUCKET_SIZE.merge_shard(&sizes);
            }
            self.frozen = Some(frozen);
        }
    }

    /// Converts the table back to its mutable staging form. No-op if
    /// already staged.
    fn thaw(&mut self) {
        if let Some(frozen) = self.frozen.take() {
            self.staging = frozen.into_buckets();
        }
    }

    /// The frozen representation, when active (for layout-aware callers).
    pub fn as_frozen(&self) -> Option<&FrozenTable<PointId>> {
        self.frozen.as_ref()
    }

    /// Inserts a point with the given bucket key (thaws a frozen table).
    pub fn insert(&mut self, key: u64, id: PointId) {
        self.thaw();
        self.staging.entry(key).or_default().push(id);
    }

    /// Removes one occurrence of `id` from the bucket for `key`, preserving
    /// the order of the remaining entries (fair samplers rely on bucket
    /// order). Returns `true` when the id was present; empty buckets are
    /// dropped so accounting stays tight. Thaws a frozen table.
    pub fn remove(&mut self, key: u64, id: PointId) -> bool {
        self.thaw();
        let Some(bucket) = self.staging.get_mut(&key) else {
            return false;
        };
        let Some(pos) = bucket.iter().position(|&x| x == id) else {
            return false;
        };
        bucket.remove(pos);
        if bucket.is_empty() {
            self.staging.remove(&key);
        }
        true
    }

    /// Returns the bucket for `key` (empty slice if the bucket does not
    /// exist).
    #[inline]
    pub fn bucket(&self, key: u64) -> &[PointId] {
        match &self.frozen {
            Some(frozen) => frozen.bucket(key),
            None => self.staging.get(&key).map(Vec::as_slice).unwrap_or(&[]),
        }
    }

    /// Number of non-empty buckets.
    pub fn num_buckets(&self) -> usize {
        match &self.frozen {
            Some(frozen) => frozen.num_buckets(),
            None => self.staging.len(),
        }
    }

    /// Total number of stored point references.
    pub fn num_entries(&self) -> usize {
        match &self.frozen {
            Some(frozen) => frozen.num_entries(),
            // fairnn-audit: allow(unordered-iter) — a sum is order-independent
            None => self.staging.values().map(Vec::len).sum(),
        }
    }

    /// Size of the largest bucket (0 for an empty table).
    pub fn max_bucket_size(&self) -> usize {
        match &self.frozen {
            Some(frozen) => frozen.max_bucket_size(),
            // fairnn-audit: allow(unordered-iter) — a max is order-independent
            None => self.staging.values().map(Vec::len).max().unwrap_or(0),
        }
    }

    /// Iterator over `(key, bucket)` pairs, in ascending key order in
    /// **both** representations: staging pairs are collected and sorted
    /// before exposure, so no caller can observe hash-map order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, &[PointId])> {
        let mut staged: Vec<(u64, &[PointId])> = Vec::with_capacity(self.staging.len());
        // fairnn-audit: allow(unordered-iter) — collected and key-sorted before exposure
        for (key, bucket) in &self.staging {
            staged.push((*key, bucket.as_slice()));
        }
        staged.sort_unstable_by_key(|(key, _)| *key);
        staged
            .into_iter()
            .chain(self.frozen.iter().flat_map(FrozenTable::buckets))
    }
}

impl fairnn_snapshot::Codec for LshTable {
    /// The wire form is always the frozen CSR image, regardless of the
    /// in-memory representation: a staging table is frozen on the fly (the
    /// canonical key-sorted layout, per-bucket order preserved), so
    /// `save → load → save` is byte-identical and a loaded table starts in
    /// exactly the state an explicit [`LshTable::freeze`] would produce —
    /// including that later incremental mutations thaw it transparently.
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        match &self.frozen {
            Some(frozen) => frozen.encode(enc),
            None => {
                // Write the canonical frozen wire form — four aligned v3
                // arrays: keys, offsets, entries, slots (see `FrozenTable`'s
                // `Codec` impl) — straight from the staging map,
                // byte-identical to freezing first (the unit tests pin
                // this), without cloning every bucket. The slot index is
                // derived from the keys by the same `build_slots` the
                // freeze path uses.
                use fairnn_snapshot::SliceCodec;
                // fairnn-audit: allow(unordered-iter) — collected and key-sorted below
                let pairs = self.staging.iter().map(|(k, v)| (*k, v));
                let mut buckets: Vec<(u64, &Vec<PointId>)> = pairs.collect();
                buckets.sort_unstable_by_key(|(key, _)| *key);
                let keys: Vec<u64> = buckets.iter().map(|(key, _)| *key).collect();
                u64::encode_slice(&keys, enc);
                enc.write_len(buckets.len() + 1);
                enc.align64();
                let mut offset = 0u32;
                enc.write_u32(offset);
                for (_, bucket) in &buckets {
                    offset = offset
                        .checked_add(u32::try_from(bucket.len()).expect("bucket exceeds u32"))
                        .expect("table exceeds u32 entries");
                    enc.write_u32(offset);
                }
                enc.write_len(offset as usize);
                enc.align64();
                for (_, bucket) in &buckets {
                    for id in *bucket {
                        id.encode(enc);
                    }
                }
                let (slots, _) = crate::frozen::build_slots(&keys);
                u32::encode_slice(&slots, enc);
            }
        }
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        Ok(Self {
            staging: HashMap::new(),
            frozen: Some(FrozenTable::decode(dec)?),
        })
    }
}

/// The `L`-table LSH index.
///
/// Generic over the hasher type `H`; the usual instantiation is
/// `LshIndex<ConcatenatedHasher<F::Hasher>>` produced by [`LshIndex::build`].
#[derive(Debug, Clone)]
pub struct LshIndex<H> {
    hashers: Vec<H>,
    tables: Vec<LshTable>,
    num_points: usize,
    params: LshParams,
}

impl<H> LshIndex<H> {
    /// Number of tables `L`.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Number of indexed points `n`.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// The parameters the index was built with.
    pub fn params(&self) -> LshParams {
        self.params
    }

    /// The per-table hashers.
    pub fn hashers(&self) -> &[H] {
        &self.hashers
    }

    /// The tables themselves (index `i` corresponds to hasher `i`).
    pub fn tables(&self) -> &[LshTable] {
        &self.tables
    }

    /// One table.
    pub fn table(&self, i: usize) -> &LshTable {
        &self.tables[i]
    }

    /// Total number of point references stored across all tables — the
    /// `Θ(n L)` space term of Theorem 1.
    pub fn total_entries(&self) -> usize {
        self.tables.iter().map(LshTable::num_entries).sum()
    }

    /// Decomposes the index into its hashers and tables. Used by the fair
    /// samplers in `fairnn-core`, which re-organise the bucket contents
    /// (e.g. sort them by rank) while keeping the same hash functions.
    pub fn into_parts(self) -> (Vec<H>, Vec<LshTable>) {
        (self.hashers, self.tables)
    }
}

/// Computes every point's `L` bucket keys into one point-major buffer
/// (`keys[i * L + t]` is point `i`'s key in table `t`): one batched
/// [`LshHasher::hash_all`] evaluation per point, with disjoint point chunks
/// hashed on parallel build workers. Chunks are concatenated in point
/// order, so the buffer is bit-identical at every thread count.
fn compute_point_keys<P, H>(hashers: &[H], points: &[P]) -> Vec<u64>
where
    H: LshHasher<P> + Sync,
    P: Sync,
{
    let l = hashers.len();
    let chunks = fairnn_parallel::map_slices(points, 32, |_, chunk| {
        let mut keys = vec![0u64; chunk.len() * l];
        for (i, p) in chunk.iter().enumerate() {
            H::hash_all(hashers, p, &mut keys[i * l..(i + 1) * l]);
        }
        keys
    });
    let mut keys = Vec::with_capacity(points.len() * l);
    for chunk in chunks {
        keys.extend(chunk);
    }
    keys
}

/// Builds the `L` frozen tables from a precomputed point-major key buffer.
/// Each table is filled by inserting the points **in point order** — the
/// exact order the serial build used — so per-bucket entry order is
/// preserved bit-for-bit; tables are disjoint work items, so they build and
/// freeze concurrently.
fn build_tables(keys: &[u64], num_tables: usize, num_points: usize) -> Vec<LshTable> {
    debug_assert_eq!(keys.len(), num_tables * num_points);
    fairnn_parallel::map_indexed(num_tables, |t| {
        let mut table = LshTable::new();
        for i in 0..num_points {
            table.insert(keys[i * num_tables + t], PointId::from_index(i));
        }
        table.freeze();
        table
    })
}

impl<H> LshIndex<H> {
    /// Builds an index from pre-sampled hashers (used by the filter-style
    /// structures and by tests that need full control over the hashers).
    /// Every point's `L` bucket keys are computed with one batched
    /// [`LshHasher::hash_all`] evaluation — point chunks hashed and the
    /// per-table CSR freezes run on parallel build workers (see
    /// [`fairnn_parallel`]), with output bit-identical to the serial build
    /// at any thread count — and the tables come out frozen into their
    /// read-optimized form.
    pub fn from_hashers<P>(hashers: Vec<H>, points: &[P], params: LshParams) -> Self
    where
        H: LshHasher<P> + Sync,
        P: Sync,
    {
        assert!(!hashers.is_empty(), "index needs at least one hasher");
        let keys = compute_point_keys(&hashers, points);
        let tables = build_tables(&keys, hashers.len(), points.len());
        Self {
            hashers,
            tables,
            num_points: points.len(),
            params,
        }
    }

    /// Freezes every table into its read-optimized form (see
    /// [`LshTable::freeze`]), tables in parallel on the build workers. Call
    /// after a burst of incremental updates to restore the contiguous
    /// bucket layout; build and [`LshIndex::rebuild`] freeze automatically.
    pub fn freeze(&mut self) {
        fairnn_parallel::for_each_mut(&mut self.tables, |_, table| table.freeze());
    }

    /// Whether every table is currently frozen.
    pub fn is_frozen(&self) -> bool {
        self.tables.iter().all(LshTable::is_frozen)
    }

    /// Per-table bucket keys of a query point.
    pub fn query_keys<P>(&self, query: &P) -> Vec<u64>
    where
        H: LshHasher<P>,
    {
        let mut keys = vec![0u64; self.hashers.len()];
        H::hash_all(&self.hashers, query, &mut keys);
        keys
    }

    /// Writes the per-table bucket keys of `query` into `keys` (resized to
    /// `L`), computing all `K × L` row hashes in one batched pass. This is
    /// the allocation-free form of [`LshIndex::query_keys`] for callers
    /// holding a reusable buffer.
    pub fn query_keys_into<P>(&self, query: &P, keys: &mut Vec<u64>)
    where
        H: LshHasher<P>,
    {
        let _timer = Timer::start(&HASH_BANK_NS);
        keys.clear();
        keys.resize(self.hashers.len(), 0);
        H::hash_all(&self.hashers, query, keys);
    }

    /// The buckets a query collides with, one (possibly empty) slice per
    /// table, in table order.
    pub fn query_buckets<P>(&self, query: &P) -> Vec<&[PointId]>
    where
        H: LshHasher<P>,
    {
        INDEX_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            self.query_keys_into(query, &mut scratch.keys);
            scratch
                .keys
                .iter()
                .zip(self.tables.iter())
                .map(|(&key, t)| t.bucket(key))
                .collect()
        })
    }

    /// Appends one point to every table, assigning it the next dense id.
    /// Returns the assigned id.
    ///
    /// This is the incremental half of the sharded serving layer: a shard
    /// can grow without rebuilding its tables, because each table is just a
    /// key → ids map and the hashers are fixed at construction time.
    ///
    /// Hidden: an engine-internal entry point, not part of the public
    /// mutation API. Applications mutate through
    /// `fairnn_engine::EngineWriter::commit`, which write-ahead-logs the
    /// change and publishes a fresh generation; calling this directly
    /// bypasses durability and thaws tables readers may be serving (the
    /// `thaw-outside-writer` audit rule rejects new call sites).
    #[doc(hidden)]
    pub fn insert_point<P>(&mut self, point: &P) -> PointId
    where
        H: LshHasher<P>,
    {
        let id = PointId::from_index(self.num_points);
        let keys = self.query_keys(point);
        for (table, &key) in self.tables.iter_mut().zip(keys.iter()) {
            table.insert(key, id);
        }
        self.num_points += 1;
        id
    }

    /// Removes `id` from every table (the caller supplies the point so its
    /// bucket keys can be recomputed). Returns `true` when at least one
    /// table contained the id. `num_points` is *not* decremented: ids stay
    /// dense and the vacated id is simply never handed out again until
    /// [`LshIndex::rebuild`] compacts the index.
    ///
    /// Hidden: engine-internal, like [`LshIndex::insert_point`] — mutate
    /// through `fairnn_engine::EngineWriter::commit` instead.
    #[doc(hidden)]
    pub fn remove_point<P>(&mut self, point: &P, id: PointId) -> bool
    where
        H: LshHasher<P>,
    {
        let keys = self.query_keys(point);
        let mut removed = false;
        for (table, &key) in self.tables.iter_mut().zip(keys.iter()) {
            removed |= table.remove(key, id);
        }
        removed
    }

    /// Rebuilds every table over `points` (point `i` gets id `PointId(i)`)
    /// while keeping the existing hashers, so the rebuild is a pure
    /// compaction: deterministic and local to this index. Shards use it to
    /// reclaim tombstoned entries without any global coordination. The
    /// rebuilt tables come out frozen. Runs the same parallel two-phase
    /// build as [`LshIndex::from_hashers`]. When the surviving points are a
    /// subset of the currently indexed ones, prefer
    /// [`LshIndex::compact_retain`], which skips the re-hash entirely.
    pub fn rebuild<P>(&mut self, points: &[P])
    where
        H: LshHasher<P> + Sync,
        P: Sync,
    {
        let keys = compute_point_keys(&self.hashers, points);
        self.tables = build_tables(&keys, self.hashers.len(), points.len());
        self.num_points = points.len();
    }

    /// Compacts the index to the points that survive the `new_id_of` remap
    /// (old id → new dense id; [`u32::MAX`] marks ids that are gone)
    /// **without re-running the hasher bank**: every surviving entry's
    /// bucket key is already recorded in the tables, so compaction is a
    /// pure per-table remap — the fix for the redundant re-hash the old
    /// rebuild-based compaction paid on every shard compaction. Requires
    /// the tables to contain surviving ids only (callers remove deleted
    /// points first, as [`crate::LshIndex::remove_point`] does).
    ///
    /// The result is bit-identical to `rebuild` over the surviving points
    /// in new-id order: per-bucket entries are re-sorted by their new ids,
    /// which is exactly the order a fresh point-order build would insert
    /// them in. Tables remap and freeze concurrently.
    ///
    /// Hidden: engine-internal, like [`LshIndex::insert_point`] — request
    /// compaction through `WriteOp::Compact` on the engine writer instead.
    #[doc(hidden)]
    pub fn compact_retain(&mut self, new_id_of: &[u32], new_num_points: usize) {
        assert!(
            new_id_of.len() >= self.num_points,
            "remap covers {} ids for {} indexed points",
            new_id_of.len(),
            self.num_points
        );
        let tables = std::mem::take(&mut self.tables);
        self.tables = fairnn_parallel::map_indexed(tables.len(), |t| {
            let mut staging: HashMap<u64, Vec<PointId>> =
                HashMap::with_capacity(tables[t].num_buckets());
            for (key, bucket) in tables[t].buckets() {
                let mut ids: Vec<PointId> = bucket
                    .iter()
                    .filter_map(|id| {
                        let new = new_id_of[id.index()];
                        (new != u32::MAX).then_some(PointId(new))
                    })
                    .collect();
                if ids.is_empty() {
                    continue;
                }
                ids.sort_unstable();
                staging.insert(key, ids);
            }
            let mut table = LshTable {
                staging,
                frozen: None,
            };
            table.freeze();
            table
        });
        self.num_points = new_num_points;
    }

    /// All ids colliding with the query in at least one table, deduplicated
    /// (the set `S_q = ∪_i S_{i, ℓ_i(q)}` of the paper). Uses a per-thread
    /// scratch; callers that own a [`QueryScratch`] should prefer
    /// [`LshIndex::colliding_ids_into`], which also reuses the output
    /// buffer.
    pub fn colliding_ids<P>(&self, query: &P) -> Vec<PointId>
    where
        H: LshHasher<P>,
    {
        INDEX_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            self.colliding_ids_into(query, scratch);
            scratch.candidates.clone()
        })
    }

    /// Collects the deduplicated colliding ids into `scratch.candidates`
    /// without allocating in the steady state: bucket keys land in
    /// `scratch.keys` (one batched hash pass), deduplication uses the
    /// epoch-stamped `scratch.visited` (no `O(n)` clear), and the result
    /// reuses `scratch.candidates`.
    pub fn colliding_ids_into<P>(&self, query: &P, scratch: &mut QueryScratch)
    where
        H: LshHasher<P>,
    {
        let QueryScratch {
            keys,
            visited,
            candidates,
            ..
        } = scratch;
        self.query_keys_into(query, keys);
        visited.reset(self.num_points);
        candidates.clear();
        for (table, &key) in self.tables.iter().zip(keys.iter()) {
            for &id in table.bucket(key) {
                if visited.insert(id.index()) {
                    candidates.push(id);
                }
            }
        }
    }

    /// Total number of colliding entries including duplicates — the number
    /// of bucket entries a standard LSH query would inspect.
    pub fn collision_count<P>(&self, query: &P) -> usize
    where
        H: LshHasher<P>,
    {
        INDEX_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            self.query_keys_into(query, &mut scratch.keys);
            scratch
                .keys
                .iter()
                .zip(self.tables.iter())
                .map(|(&key, t)| t.bucket(key).len())
                .sum()
        })
    }
}

impl<H> LshIndex<H> {
    /// Shared tail of the inline and sectioned decoders: every cross-field
    /// invariant of the wire format lives here, exactly once, so the two
    /// container forms cannot drift apart in what they accept.
    fn assemble(
        hashers: Vec<H>,
        tables: Vec<LshTable>,
        num_points: usize,
        params: LshParams,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        use fairnn_snapshot::SnapshotError;
        if hashers.is_empty() {
            return Err(SnapshotError::Corrupt(
                "an LSH index needs at least one hasher".into(),
            ));
        }
        if tables.len() != hashers.len() {
            return Err(SnapshotError::Corrupt(format!(
                "index stores {} tables for {} hashers",
                tables.len(),
                hashers.len()
            )));
        }
        for table in &tables {
            for (_, bucket) in table.buckets() {
                if let Some(&id) = bucket.iter().find(|id| id.index() >= num_points) {
                    return Err(SnapshotError::Corrupt(format!(
                        "bucket entry {id} out of range for {num_points} points"
                    )));
                }
            }
        }
        Ok(Self {
            hashers,
            tables,
            num_points,
            params,
        })
    }
}

impl<H: crate::snapshot::HasherBankCodec> fairnn_snapshot::Codec for LshIndex<H> {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        H::encode_bank(&self.hashers, enc);
        self.tables.encode(enc);
        enc.write_u64(self.num_points as u64);
        self.params.encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        let hashers = H::decode_bank(dec)?;
        let tables = Vec::<LshTable>::decode(dec)?;
        let num_points = usize::decode(dec)?;
        let params = LshParams::decode(dec)?;
        Self::assemble(hashers, tables, num_points, params)
    }

    /// Sectioned container image: section 0 holds the hasher bank and the
    /// scalar metadata, then one section per table — so table encodes, the
    /// per-section checksums and the per-table decodes (CSR validation +
    /// key-index rebuild, the expensive part of a load) all run on parallel
    /// build workers. The bytes are identical at every thread count.
    fn encode_sections(&self) -> Vec<Vec<u8>> {
        let mut head = fairnn_snapshot::Encoder::new();
        H::encode_bank(&self.hashers, &mut head);
        head.write_u64(self.num_points as u64);
        self.params.encode(&mut head);
        head.write_u64(self.tables.len() as u64);
        let mut sections = Vec::with_capacity(self.tables.len() + 1);
        sections.push(head.into_bytes());
        // Capture only the tables (not `self`), so the parallel encode
        // needs no `Sync` bound on the hasher type.
        let tables = &self.tables;
        sections.extend(fairnn_parallel::map_indexed(tables.len(), |t| {
            let mut enc = fairnn_snapshot::Encoder::new();
            tables[t].encode(&mut enc);
            enc.into_bytes()
        }));
        sections
    }

    fn decode_sections(
        sections: &[fairnn_snapshot::Section<'_>],
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        use fairnn_snapshot::SnapshotError;
        let Some((head, table_sections)) = sections.split_first() else {
            return Err(SnapshotError::Corrupt(
                "LSH index snapshot has no head section".into(),
            ));
        };
        let mut dec = head.decoder();
        let hashers = H::decode_bank(&mut dec)?;
        let num_points = usize::decode(&mut dec)?;
        let params = LshParams::decode(&mut dec)?;
        // Cross-section count: a plain u64, *not* `read_len` (the bound of
        // which is the remaining bytes of this section, not the directory).
        let num_tables = usize::try_from(dec.read_u64()?)
            .map_err(|_| SnapshotError::Corrupt("table count does not fit usize".into()))?;
        dec.finish()?;
        if num_tables != table_sections.len() {
            return Err(SnapshotError::Corrupt(format!(
                "index head declares {num_tables} tables, directory holds {} table sections",
                table_sections.len()
            )));
        }
        let decoded = fairnn_parallel::map_indexed(table_sections.len(), |t| {
            let mut dec = table_sections[t].decoder();
            let table = LshTable::decode(&mut dec)?;
            dec.finish()?;
            Ok::<LshTable, SnapshotError>(table)
        });
        let mut tables = Vec::with_capacity(num_tables);
        for table in decoded {
            tables.push(table?);
        }
        // All structural invariants live in the shared `assemble` tail.
        Self::assemble(hashers, tables, num_points, params)
    }
}

impl<H: crate::snapshot::HasherBankCodec> LshIndex<H> {
    /// Writes the index as a versioned, checksummed snapshot file. Tables
    /// are stored in their frozen CSR form (staging tables are frozen into
    /// the canonical image on the way out); the shared hasher bank is
    /// written flat, row by row, exactly once.
    pub fn save<P: AsRef<std::path::Path>>(
        &self,
        path: P,
    ) -> Result<(), fairnn_snapshot::SnapshotError> {
        fairnn_snapshot::save(fairnn_snapshot::SnapshotKind::LshIndex, self, path)
    }

    /// Restores an index written by [`LshIndex::save`]. The loaded index is
    /// fully frozen and behaves exactly like the saved one: queries produce
    /// identical keys and buckets, and incremental mutations thaw the
    /// affected tables exactly as they would after [`LshIndex::freeze`].
    pub fn load<P: AsRef<std::path::Path>>(
        path: P,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        fairnn_snapshot::load(fairnn_snapshot::SnapshotKind::LshIndex, path)
    }
}

impl<BH> LshIndex<ConcatenatedHasher<BH>> {
    /// Builds the standard `K × L` index: `L` tables, each keyed by a
    /// concatenation of `K` draws from `family`.
    ///
    /// All `K × L` rows are drawn into one shared table-major bank
    /// ([`ConcatenatedHasher::bank`]) so batched queries evaluate them in a
    /// single pass over the point. The draw order matches the historical
    /// per-table sampling exactly, so seeds keep producing the same hashers.
    pub fn build<P, F, R>(
        family: &F,
        params: LshParams,
        points: &[P],
        rng: &mut R,
    ) -> LshIndex<ConcatenatedHasher<F::Hasher>>
    where
        F: LshFamily<P, Hasher = BH>,
        BH: LshHasher<P> + Send + Sync,
        P: Sync,
        R: Rng + ?Sized,
    {
        let rows = family.sample_many(rng, params.k * params.l);
        let hashers = ConcatenatedHasher::bank(rows, params.k);
        LshIndex::from_hashers(hashers, points, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::OneBitMinHash;
    use crate::params::ParamsBuilder;
    use fairnn_space::{Dataset, Jaccard, SparseSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_sets() -> Vec<SparseSet> {
        // Three clusters of mutually similar sets plus isolated points.
        let mut sets = Vec::new();
        for c in 0..3u32 {
            let base: Vec<u32> = (c * 100..c * 100 + 30).collect();
            for j in 0..8u32 {
                let mut items = base.clone();
                items.push(1000 + c * 10 + j);
                items.push(2000 + c * 10 + j);
                sets.push(SparseSet::from_items(items));
            }
        }
        for i in 0..10u32 {
            sets.push(SparseSet::from_items(
                (5000 + i * 50..5000 + i * 50 + 20).collect(),
            ));
        }
        sets
    }

    fn build_index(
        sets: &[SparseSet],
    ) -> LshIndex<ConcatenatedHasher<crate::minhash::OneBitMinHasher>> {
        let params = ParamsBuilder::new(sets.len(), 0.5, 0.1).empirical(&OneBitMinHash);
        let mut rng = StdRng::seed_from_u64(99);
        LshIndex::build(&OneBitMinHash, params, sets, &mut rng)
    }

    #[test]
    fn table_insert_and_lookup() {
        let mut table = LshTable::new();
        assert_eq!(table.num_buckets(), 0);
        table.insert(7, PointId(0));
        table.insert(7, PointId(1));
        table.insert(9, PointId(2));
        assert_eq!(table.bucket(7), &[PointId(0), PointId(1)]);
        assert_eq!(table.bucket(9), &[PointId(2)]);
        assert!(table.bucket(8).is_empty());
        assert_eq!(table.num_buckets(), 2);
        assert_eq!(table.num_entries(), 3);
        assert_eq!(table.max_bucket_size(), 2);
        assert_eq!(table.buckets().count(), 2);
    }

    #[test]
    fn index_stores_every_point_in_every_table() {
        let sets = toy_sets();
        let index = build_index(&sets);
        assert_eq!(index.num_points(), sets.len());
        assert!(index.num_tables() >= 1);
        for table in index.tables() {
            assert_eq!(table.num_entries(), sets.len());
        }
        assert_eq!(index.total_entries(), sets.len() * index.num_tables());
        assert_eq!(index.hashers().len(), index.num_tables());
    }

    #[test]
    fn near_duplicates_collide_with_high_probability() {
        let sets = toy_sets();
        let index = build_index(&sets);
        let data = Dataset::new(sets.clone());
        // Query with the first cluster member: its 7 siblings have Jaccard
        // around 0.88 and must be retrieved by the 99%-recall index.
        let query = sets[0].clone();
        let near = data.similar_indices(&Jaccard, &query, 0.5);
        let colliding = index.colliding_ids(&query);
        for id in &near {
            assert!(
                colliding.contains(id),
                "near point {id:?} missing from collisions"
            );
        }
    }

    #[test]
    fn colliding_ids_are_deduplicated() {
        let sets = toy_sets();
        let index = build_index(&sets);
        let query = sets[0].clone();
        let ids = index.colliding_ids(&query);
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(ids.len(), sorted.len(), "duplicate ids returned");
        // Counting duplicates across tables must be at least the dedup count.
        assert!(index.collision_count(&query) >= ids.len());
    }

    #[test]
    fn query_buckets_align_with_query_keys() {
        let sets = toy_sets();
        let index = build_index(&sets);
        let query = sets[3].clone();
        let keys = index.query_keys(&query);
        let buckets = index.query_buckets(&query);
        assert_eq!(keys.len(), index.num_tables());
        assert_eq!(buckets.len(), index.num_tables());
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(index.table(i).bucket(*key), buckets[i]);
        }
    }

    #[test]
    fn from_hashers_respects_given_hashers() {
        use crate::minhash::OneBitMinHasher;
        let sets = toy_sets();
        let hashers = vec![
            ConcatenatedHasher::new(vec![
                OneBitMinHasher::from_seed(1),
                OneBitMinHasher::from_seed(2),
            ]),
            ConcatenatedHasher::new(vec![
                OneBitMinHasher::from_seed(3),
                OneBitMinHasher::from_seed(4),
            ]),
        ];
        let params = LshParams::explicit(2, 2, 0.5, 0.1);
        let index = LshIndex::from_hashers(hashers, &sets, params);
        assert_eq!(index.num_tables(), 2);
        assert_eq!(index.params().k, 2);
        // Every point must be findable by querying with itself.
        for (i, s) in sets.iter().enumerate() {
            assert!(index.colliding_ids(s).contains(&PointId::from_index(i)));
        }
    }

    #[test]
    fn table_remove_preserves_order_and_drops_empty_buckets() {
        let mut table = LshTable::new();
        table.insert(7, PointId(0));
        table.insert(7, PointId(1));
        table.insert(7, PointId(2));
        table.insert(9, PointId(3));
        assert!(table.remove(7, PointId(1)));
        assert_eq!(table.bucket(7), &[PointId(0), PointId(2)]);
        assert!(
            !table.remove(7, PointId(1)),
            "double remove must be a no-op"
        );
        assert!(!table.remove(42, PointId(0)), "missing bucket");
        assert!(table.remove(9, PointId(3)));
        assert_eq!(table.num_buckets(), 1, "emptied bucket must be dropped");
    }

    #[test]
    fn incremental_insert_remove_and_rebuild() {
        let sets = toy_sets();
        let (head, tail) = sets.split_at(sets.len() - 3);
        let mut index = {
            let params = ParamsBuilder::new(sets.len(), 0.5, 0.1).empirical(&OneBitMinHash);
            let mut rng = StdRng::seed_from_u64(5);
            LshIndex::build(&OneBitMinHash, params, head, &mut rng)
        };
        // Appending the tail must reproduce the index built over everything.
        for p in tail {
            let id = index.insert_point(p);
            assert_eq!(id.index() + 1, index.num_points());
            assert!(index.colliding_ids(p).contains(&id));
        }
        assert_eq!(index.total_entries(), sets.len() * index.num_tables());

        // Removing a point erases it from every table.
        let victim = PointId(0);
        assert!(index.remove_point(&sets[0], victim));
        assert!(!index.colliding_ids(&sets[0]).contains(&victim));
        assert!(!index.remove_point(&sets[0], victim), "already removed");
        assert_eq!(index.total_entries(), (sets.len() - 1) * index.num_tables());

        // Rebuilding over a compacted slice re-densifies the ids.
        index.rebuild(&sets[1..]);
        assert_eq!(index.num_points(), sets.len() - 1);
        assert_eq!(index.total_entries(), (sets.len() - 1) * index.num_tables());
        for (i, s) in sets[1..].iter().enumerate() {
            assert!(index.colliding_ids(s).contains(&PointId::from_index(i)));
        }
    }

    #[test]
    fn compact_retain_matches_rebuild_without_rehashing() {
        let sets = toy_sets();
        let mut retained = build_index(&sets);
        let mut rebuilt = retained.clone();
        // Drop every third point, as a shard compaction would after deletes.
        let keep: Vec<usize> = (0..sets.len()).filter(|i| i % 3 != 0).collect();
        let mut new_id_of = vec![u32::MAX; sets.len()];
        for (new, &old) in keep.iter().enumerate() {
            new_id_of[old] = new as u32;
        }
        for (i, s) in sets.iter().enumerate() {
            if i % 3 == 0 {
                assert!(retained.remove_point(s, PointId::from_index(i)));
                assert!(rebuilt.remove_point(s, PointId::from_index(i)));
            }
        }
        let survivors: Vec<SparseSet> = keep.iter().map(|&i| sets[i].clone()).collect();
        retained.compact_retain(&new_id_of, survivors.len());
        rebuilt.rebuild(&survivors);
        assert_eq!(retained.num_points(), rebuilt.num_points());
        for (a, b) in retained.tables().iter().zip(rebuilt.tables()) {
            let got: Vec<(u64, Vec<PointId>)> =
                a.buckets().map(|(k, ids)| (k, ids.to_vec())).collect();
            let want: Vec<(u64, Vec<PointId>)> =
                b.buckets().map(|(k, ids)| (k, ids.to_vec())).collect();
            assert_eq!(got, want, "contents and per-bucket order must match");
        }
        // And the canonical snapshots agree byte for byte.
        use fairnn_snapshot::{to_bytes, SnapshotKind};
        assert_eq!(
            to_bytes(SnapshotKind::LshIndex, &retained),
            to_bytes(SnapshotKind::LshIndex, &rebuilt)
        );
    }

    #[test]
    fn snapshot_roundtrip_preserves_queries_and_layout() {
        use fairnn_snapshot::{from_bytes, to_bytes, SnapshotKind};
        let sets = toy_sets();
        let index = build_index(&sets);
        let bytes = to_bytes(SnapshotKind::LshIndex, &index);
        let loaded: LshIndex<ConcatenatedHasher<crate::minhash::OneBitMinHasher>> =
            from_bytes(SnapshotKind::LshIndex, &bytes).expect("load");
        assert!(loaded.is_frozen(), "loaded tables start frozen");
        assert_eq!(loaded.num_points(), index.num_points());
        assert_eq!(loaded.num_tables(), index.num_tables());
        for s in &sets {
            assert_eq!(loaded.query_keys(s), index.query_keys(s));
            assert_eq!(loaded.colliding_ids(s), index.colliding_ids(s));
        }
        // Canonical: encoding the loaded index reproduces the bytes.
        assert_eq!(to_bytes(SnapshotKind::LshIndex, &loaded), bytes);
    }

    #[test]
    fn snapshot_of_staging_tables_equals_snapshot_after_freeze() {
        use fairnn_snapshot::{to_bytes, SnapshotKind};
        let sets = toy_sets();
        let mut index = build_index(&sets);
        // Thaw a table via an insert/remove pair: contents are unchanged but
        // the representation is now the staging HashMap.
        let extra = SparseSet::from_items(vec![1, 2, 3]);
        let id = index.insert_point(&extra);
        index.remove_point(&extra, id);
        assert!(!index.is_frozen());
        let staged = index.clone();
        index.freeze();
        // num_points differs (the insert bumped it in both copies), so the
        // two snapshots are taken from identical logical states.
        assert_eq!(
            to_bytes(SnapshotKind::LshIndex, &staged),
            to_bytes(SnapshotKind::LshIndex, &index),
            "staging and frozen forms must snapshot identically"
        );
    }

    #[test]
    fn mutating_a_loaded_index_matches_mutating_the_original() {
        use fairnn_snapshot::{from_bytes, to_bytes, SnapshotKind};
        let sets = toy_sets();
        let mut index = build_index(&sets);
        let bytes = to_bytes(SnapshotKind::LshIndex, &index);
        let mut loaded: LshIndex<ConcatenatedHasher<crate::minhash::OneBitMinHasher>> =
            from_bytes(SnapshotKind::LshIndex, &bytes).expect("load");
        let extra = SparseSet::from_items((3000..3020).collect());
        assert_eq!(loaded.insert_point(&extra), index.insert_point(&extra));
        for s in sets.iter().chain(std::iter::once(&extra)) {
            assert_eq!(loaded.colliding_ids(s), index.colliding_ids(s));
        }
    }

    #[test]
    fn far_points_rarely_collide_under_full_minhash() {
        use crate::minhash::MinHash;
        let sets = toy_sets();
        let data = Dataset::new(sets.clone());
        // Full 64-bit MinHash: disjoint sets collide with probability ~0, so
        // even a single row per table keeps far points out of the buckets.
        let params = ParamsBuilder::new(sets.len(), 0.5, 0.05).empirical(&MinHash);
        let mut rng = StdRng::seed_from_u64(11);
        let index = LshIndex::build(&MinHash, params, &sets, &mut rng);
        let query = sets[0].clone();
        let colliding = index.colliding_ids(&query);
        let far: Vec<_> = data
            .similarities_to(&Jaccard, &query)
            .into_iter()
            .filter(|(_, s)| *s == 0.0)
            .map(|(id, _)| id)
            .collect();
        let far_collisions = far.iter().filter(|id| colliding.contains(id)).count();
        assert_eq!(
            far_collisions, 0,
            "disjoint sets should never share a MinHash value"
        );
    }
}
