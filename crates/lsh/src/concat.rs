//! AND-concatenation of LSH functions.
//!
//! Section 2.2 of the paper assumes `p2 ≤ 1/n` and notes that this can
//! always be achieved by concatenating `K = Θ(log_{1/p2}(n))` independent
//! functions: the concatenated family is `(r, cr, p1^K, p2^K)`-sensitive and
//! `ρ` is unchanged. [`ConcatenatedHasher`] performs that concatenation and
//! folds the `K` tokens into a single 64-bit bucket key with a polynomial
//! hash (collisions of the fold are astronomically unlikely and only ever
//! *merge* buckets, which the query algorithms tolerate because they always
//! re-check distances).

use crate::family::{CollisionModel, LshFamily, LshHasher};
use rand::Rng;
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    /// Per-thread token scratch for [`ConcatenatedHasher`]'s `hash_all`:
    /// holds the `K × L` row hashes of one batched evaluation so the query
    /// hot path performs no heap allocation in the steady state. Thread
    /// local (rather than caller-provided) so the batched path is available
    /// behind the plain [`LshHasher`] trait, including from the engine's
    /// worker threads.
    static ROW_TOKENS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A hasher formed by concatenating `K` independent hashers from a base
/// family.
///
/// The rows live in an [`Arc`] slice so that the `L` table hashers of one
/// index can share a single table-major *bank* (see
/// [`ConcatenatedHasher::bank`]); when a whole slice of such siblings is
/// evaluated through [`LshHasher::hash_all`], all `K × L` rows are hashed in
/// one pass over the point.
#[derive(Debug, Clone)]
pub struct ConcatenatedHasher<H> {
    rows: Arc<[H]>,
    start: usize,
    arity: usize,
}

impl<H> ConcatenatedHasher<H> {
    /// Combines `rows` hashers into one. `rows` must be non-empty.
    pub fn new(rows: Vec<H>) -> Self {
        assert!(!rows.is_empty(), "concatenation needs at least one hasher");
        let arity = rows.len();
        Self {
            rows: rows.into(),
            start: 0,
            arity,
        }
    }

    /// Splits a flat, table-major bank of `rows.len() / arity` tables ×
    /// `arity` rows into table hashers that all share one allocation.
    /// [`crate::LshIndex::build`] uses this so a query can evaluate every
    /// row of every table in a single pass over the point.
    pub fn bank(rows: Vec<H>, arity: usize) -> Vec<Self> {
        assert!(arity >= 1, "concatenation needs at least one hasher");
        assert_eq!(
            rows.len() % arity,
            0,
            "bank size must be a multiple of the arity"
        );
        let shared: Arc<[H]> = rows.into();
        (0..shared.len() / arity)
            .map(|table| Self {
                rows: Arc::clone(&shared),
                start: table * arity,
                arity,
            })
            .collect()
    }

    /// Number of concatenated rows `K`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The individual row hashers.
    pub fn rows(&self) -> &[H] {
        &self.rows[self.start..self.start + self.arity]
    }

    /// When every hasher in `tables` views consecutive chunks of one shared
    /// bank (the layout [`ConcatenatedHasher::bank`] produces), returns the
    /// flat prefix of that bank covering all of them.
    fn flat_bank(tables: &[Self]) -> Option<&[H]> {
        let first = tables.first()?;
        let mut expected_start = 0;
        for table in tables {
            if !Arc::ptr_eq(&table.rows, &first.rows) || table.start != expected_start {
                return None;
            }
            expected_start += table.arity;
        }
        Some(&first.rows[..expected_start])
    }

    /// Folds a table's row tokens into its 64-bit bucket key — a polynomial
    /// in a fixed odd base. Equal row-token vectors always produce equal
    /// keys; distinct vectors collide only if the fold collides.
    #[inline]
    fn fold(tokens: impl IntoIterator<Item = u64>) -> u64 {
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        for token in tokens {
            acc = acc
                .wrapping_mul(0x0000_0100_0000_01B3)
                .wrapping_add(token.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
                .wrapping_add(1);
        }
        acc
    }
}

impl<P, H: LshHasher<P>> LshHasher<P> for ConcatenatedHasher<H> {
    fn hash(&self, point: &P) -> u64 {
        Self::fold(self.rows().iter().map(|row| row.hash(point)))
    }

    /// Batched bucket keys: `out[t] = tables[t].hash(point)`.
    ///
    /// When the tables share one contiguous bank (the
    /// [`ConcatenatedHasher::bank`] layout), all `K × L` row hashes are
    /// computed by a *single* `H::hash_all` pass over the point and then
    /// folded per table; otherwise each table gets its own single-pass
    /// evaluation of its `K` rows. Either way the keys are bit-identical to
    /// the per-row [`LshHasher::hash`] path, and the intermediate tokens
    /// live in a reusable thread-local buffer, so steady-state queries do
    /// not allocate.
    fn hash_all(tables: &[Self], point: &P, out: &mut [u64]) {
        debug_assert_eq!(tables.len(), out.len(), "one output slot per table");
        // Take the buffer out of the thread-local instead of holding the
        // borrow across the `H::hash_all` calls: if `H` is itself a
        // `ConcatenatedHasher` (nested concatenation), the inner call then
        // simply starts from an empty taken buffer rather than hitting a
        // re-entrant `RefCell` borrow.
        let mut tokens = ROW_TOKENS.with(|cell| std::mem::take(&mut *cell.borrow_mut()));
        if let Some(flat) = Self::flat_bank(tables) {
            tokens.clear();
            tokens.resize(flat.len(), 0);
            H::hash_all(flat, point, &mut tokens);
            let mut offset = 0;
            for (table, slot) in tables.iter().zip(out.iter_mut()) {
                *slot = Self::fold(tokens[offset..offset + table.arity].iter().copied());
                offset += table.arity;
            }
        } else {
            for (table, slot) in tables.iter().zip(out.iter_mut()) {
                let rows = table.rows();
                tokens.clear();
                tokens.resize(rows.len(), 0);
                H::hash_all(rows, point, &mut tokens);
                *slot = Self::fold(tokens.iter().copied());
            }
        }
        ROW_TOKENS.with(|cell| *cell.borrow_mut() = tokens);
    }
}

/// Bank layout tags of the [`crate::snapshot::HasherBankCodec`] encoding.
const BANK_SHARED: u8 = 1;
const BANK_INDEPENDENT: u8 = 0;

impl<H: crate::snapshot::RowCodec> crate::snapshot::HasherBankCodec for ConcatenatedHasher<H> {
    /// Writes the table hashers either as one flat shared bank (the layout
    /// [`ConcatenatedHasher::bank`] produces — each row written exactly
    /// once, in bulk via [`crate::snapshot::RowCodec`]) or, for
    /// independently built hashers, as one row vector per table.
    fn encode_bank(tables: &[Self], enc: &mut fairnn_snapshot::Encoder) {
        let uniform_arity = tables
            .first()
            .is_some_and(|first| tables.iter().all(|t| t.arity == first.arity));
        match Self::flat_bank(tables) {
            Some(flat) if uniform_arity => {
                enc.write_u8(BANK_SHARED);
                enc.write_len(tables.len());
                enc.write_u64(tables[0].arity as u64);
                H::encode_rows(flat, enc);
            }
            _ => {
                enc.write_u8(BANK_INDEPENDENT);
                enc.write_len(tables.len());
                for table in tables {
                    enc.write_u64(table.arity as u64);
                    for row in table.rows() {
                        row.encode(enc);
                    }
                }
            }
        }
    }

    fn decode_bank(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Vec<Self>, fairnn_snapshot::SnapshotError> {
        use fairnn_snapshot::{Codec, SnapshotError};
        let layout = dec.read_u8()?;
        let num_tables = dec.read_len()?;
        match layout {
            BANK_SHARED => {
                let arity = usize::decode(dec)?;
                if arity < 1 {
                    return Err(SnapshotError::Corrupt(
                        "hasher bank arity must be at least 1".into(),
                    ));
                }
                let total = num_tables.checked_mul(arity).ok_or_else(|| {
                    SnapshotError::Corrupt(format!(
                        "hasher bank of {num_tables} tables x {arity} rows overflows"
                    ))
                })?;
                let rows = H::decode_rows(dec, total)?;
                if rows.len() != total {
                    return Err(SnapshotError::Corrupt(format!(
                        "hasher bank stores {} rows but its header promises {total}",
                        rows.len()
                    )));
                }
                Ok(Self::bank(rows, arity))
            }
            BANK_INDEPENDENT => {
                let mut tables = Vec::with_capacity(num_tables.min(dec.remaining()));
                for _ in 0..num_tables {
                    let arity = usize::decode(dec)?;
                    if arity < 1 {
                        return Err(SnapshotError::Corrupt(
                            "concatenated hasher arity must be at least 1".into(),
                        ));
                    }
                    let mut rows = Vec::with_capacity(arity.min(dec.remaining()));
                    for _ in 0..arity {
                        rows.push(H::decode(dec)?);
                    }
                    tables.push(Self::new(rows));
                }
                Ok(tables)
            }
            other => Err(SnapshotError::Corrupt(format!(
                "unknown hasher bank layout tag {other}"
            ))),
        }
    }
}

/// A family whose samples are concatenations of `K` draws from a base
/// family.
#[derive(Debug, Clone)]
pub struct ConcatenatedFamily<F> {
    base: F,
    arity: usize,
}

impl<F> ConcatenatedFamily<F> {
    /// Creates a family concatenating `arity >= 1` draws from `base`.
    pub fn new(base: F, arity: usize) -> Self {
        assert!(arity >= 1, "concatenation arity must be at least 1");
        Self { base, arity }
    }

    /// The concatenation arity `K`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The underlying base family.
    pub fn base(&self) -> &F {
        &self.base
    }
}

impl<F: CollisionModel> CollisionModel for ConcatenatedFamily<F> {
    /// The concatenation collides only if every row collides:
    /// `p(x)^K` for base collision probability `p(x)`.
    fn collision_probability(&self, x: f64) -> f64 {
        self.base.collision_probability(x).powi(self.arity as i32)
    }
}

impl<P, F: LshFamily<P>> LshFamily<P> for ConcatenatedFamily<F> {
    type Hasher = ConcatenatedHasher<F::Hasher>;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Hasher {
        ConcatenatedHasher::new(self.base.sample_many(rng, self.arity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::{MinHash, OneBitMinHash};
    use fairnn_space::SparseSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn concatenation_preserves_equality_of_identical_points() {
        let mut rng = StdRng::seed_from_u64(1);
        let family = ConcatenatedFamily::new(OneBitMinHash, 8);
        let set = SparseSet::from_items(vec![1, 2, 3, 4, 5]);
        for _ in 0..20 {
            let h = family.sample(&mut rng);
            assert_eq!(h.arity(), 8);
            assert_eq!(h.hash(&set), h.hash(&set));
        }
    }

    #[test]
    fn concatenation_separates_dissimilar_points_more_strongly() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = SparseSet::from_items((0..40).collect());
        let b = SparseSet::from_items((20..60).collect()); // Jaccard 1/3
        let single = MinHash;
        let concat = ConcatenatedFamily::new(MinHash, 4);
        let trials = 2000;
        let mut single_coll = 0;
        let mut concat_coll = 0;
        for _ in 0..trials {
            let h1 = single.sample(&mut rng);
            if h1.hash(&a) == h1.hash(&b) {
                single_coll += 1;
            }
            let h4 = concat.sample(&mut rng);
            if h4.hash(&a) == h4.hash(&b) {
                concat_coll += 1;
            }
        }
        assert!(
            concat_coll < single_coll,
            "concatenation should collide less: single {single_coll}, concat {concat_coll}"
        );
    }

    #[test]
    fn collision_model_is_power_of_base() {
        let base = OneBitMinHash;
        let fam = ConcatenatedFamily::new(base, 10);
        assert_eq!(fam.arity(), 10);
        let s = 0.4;
        let expected = base.collision_probability(s).powi(10);
        assert!((fam.collision_probability(s) - expected).abs() < 1e-12);
        // Base accessor exposes the original family.
        assert_eq!(
            fam.base().collision_probability(s),
            base.collision_probability(s)
        );
    }

    #[test]
    fn concatenation_reduces_p2_below_target() {
        // With K bits of 1-bit MinHash, far points (J = 0.1) collide with
        // probability 0.55^K; choose K so this is below 1/n for n = 1000.
        let n = 1000f64;
        let base = OneBitMinHash;
        let p2 = base.collision_probability(0.1);
        let k = ((1.0 / n).ln() / p2.ln()).ceil() as usize;
        let fam = ConcatenatedFamily::new(base, k);
        assert!(fam.collision_probability(0.1) <= 1.0 / n * 1.0001);
    }

    #[test]
    #[should_panic(expected = "at least one hasher")]
    fn empty_concatenation_rejected() {
        let _: ConcatenatedHasher<crate::minhash::MinHasher> = ConcatenatedHasher::new(vec![]);
    }

    #[test]
    fn empirical_concatenated_collision_rate_matches_model() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = SparseSet::from_items((0..30).collect());
        let b = SparseSet::from_items((10..40).collect()); // Jaccard 0.5
        let fam = ConcatenatedFamily::new(OneBitMinHash, 3);
        let expected = fam.collision_probability(0.5); // 0.75^3
        let trials = 4000;
        let mut coll = 0;
        for _ in 0..trials {
            let h = fam.sample(&mut rng);
            if h.hash(&a) == h.hash(&b) {
                coll += 1;
            }
        }
        let rate = coll as f64 / trials as f64;
        assert!(
            (rate - expected).abs() < 0.04,
            "rate {rate}, expected {expected}"
        );
    }
}
