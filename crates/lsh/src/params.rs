//! LSH parameter selection.
//!
//! Two selection strategies are provided:
//!
//! * [`ParamsBuilder::theory`] follows the asymptotic recipe of Section 2.2:
//!   concatenate `K` rows so that the far-collision probability drops below
//!   `1/n`, then use `L = Θ(p1^{-K} log n)` repetitions so that every near
//!   point collides with the query at least once with high probability.
//! * [`ParamsBuilder::empirical`] follows the concrete choices of the
//!   experimental evaluation (Section 6): pick `K` so that the *expected
//!   number* of colliding far points (similarity at most `far`) is at most a
//!   small budget (5 in the paper), and pick `L` so that a single near point
//!   (similarity at least `near`) is retrieved with probability at least the
//!   target recall (99 % in the paper).
//!
//! Both produce an [`LshParams`] value consumed by
//! [`crate::table::LshIndex::build`] and by the fair samplers in
//! `fairnn-core`.

use crate::family::CollisionModel;

/// Concrete LSH index parameters: `K` rows per table, `L` tables, and the
/// similarity/distance thresholds they were derived for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshParams {
    /// Number of concatenated hash functions per table (AND-construction).
    pub k: usize,
    /// Number of tables / repetitions (OR-construction).
    pub l: usize,
    /// Near threshold `r` (similarity ≥ r, or distance ≤ r).
    pub near: f64,
    /// Far threshold `cr`.
    pub far: f64,
}

impl LshParams {
    /// Creates parameters directly (mainly for tests and ablations).
    pub fn explicit(k: usize, l: usize, near: f64, far: f64) -> Self {
        assert!(k >= 1, "K must be at least 1");
        assert!(l >= 1, "L must be at least 1");
        Self { k, l, near, far }
    }

    /// Probability that a point at similarity/distance `x` collides with the
    /// query in at least one of the `L` tables, under the given collision
    /// model. This is the "recall" curve of the index.
    pub fn retrieval_probability<M: CollisionModel>(&self, model: &M, x: f64) -> f64 {
        let p_single = model.collision_probability(x).clamp(0.0, 1.0);
        let p_table = p_single.powi(self.k as i32);
        1.0 - (1.0 - p_table).powi(self.l as i32)
    }

    /// Expected number of colliding points at similarity/distance `x` when
    /// `count` dataset points sit at that value, summed over all `L` tables
    /// (i.e. counting duplicates, as the query algorithms do).
    pub fn expected_collisions<M: CollisionModel>(&self, model: &M, x: f64, count: usize) -> f64 {
        let p_single = model.collision_probability(x).clamp(0.0, 1.0);
        let p_table = p_single.powi(self.k as i32);
        p_table * self.l as f64 * count as f64
    }
}

impl fairnn_snapshot::Codec for LshParams {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        enc.write_u64(self.k as u64);
        enc.write_u64(self.l as u64);
        enc.write_f64(self.near);
        enc.write_f64(self.far);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        let k = usize::decode(dec)?;
        let l = usize::decode(dec)?;
        let near = dec.read_f64()?;
        let far = dec.read_f64()?;
        if k < 1 || l < 1 {
            return Err(fairnn_snapshot::SnapshotError::Corrupt(format!(
                "LSH parameters need K >= 1 and L >= 1, found K = {k}, L = {l}"
            )));
        }
        Ok(Self { k, l, near, far })
    }
}

/// Builder computing [`LshParams`] from a collision model and workload
/// description.
#[derive(Debug, Clone, Copy)]
pub struct ParamsBuilder {
    /// Dataset size `n`.
    pub n: usize,
    /// Near threshold `r`.
    pub near: f64,
    /// Far threshold `cr`.
    pub far: f64,
    /// Target probability of retrieving a given near point (paper: 0.99).
    pub recall: f64,
    /// Budget for the expected number of far points colliding per table
    /// (paper: 5).
    pub far_collision_budget: f64,
    /// Upper bound on `L` as a safety net against degenerate models.
    pub max_tables: usize,
    /// Upper bound on `K`.
    pub max_rows: usize,
}

impl ParamsBuilder {
    /// Creates a builder with the paper's Section 6 defaults
    /// (`recall = 0.99`, far-collision budget 5).
    pub fn new(n: usize, near: f64, far: f64) -> Self {
        Self {
            n,
            near,
            far,
            recall: 0.99,
            far_collision_budget: 5.0,
            max_tables: 100_000,
            max_rows: 512,
        }
    }

    /// Overrides the recall target.
    pub fn with_recall(mut self, recall: f64) -> Self {
        assert!(recall > 0.0 && recall < 1.0, "recall must be in (0, 1)");
        self.recall = recall;
        self
    }

    /// Overrides the far-collision budget.
    pub fn with_far_collision_budget(mut self, budget: f64) -> Self {
        assert!(budget > 0.0, "budget must be positive");
        self.far_collision_budget = budget;
        self
    }

    /// Section 6-style parameters: `K` bounds the expected number of far
    /// collisions per table; `L` achieves the recall target at the near
    /// threshold.
    pub fn empirical<M: CollisionModel>(&self, model: &M) -> LshParams {
        let p_far = model
            .collision_probability(self.far)
            .clamp(1e-12, 1.0 - 1e-12);
        let p_near = model
            .collision_probability(self.near)
            .clamp(1e-12, 1.0 - 1e-12);
        assert!(
            p_near > p_far,
            "collision model must separate near ({p_near}) from far ({p_far})"
        );

        // n * p_far^K <= budget  =>  K >= ln(n / budget) / ln(1 / p_far).
        let k = if (self.n as f64) <= self.far_collision_budget {
            1
        } else {
            ((self.n as f64 / self.far_collision_budget).ln() / (1.0 / p_far).ln()).ceil() as usize
        };
        let k = k.clamp(1, self.max_rows);

        // 1 - (1 - p_near^K)^L >= recall  =>  L >= ln(1 - recall) / ln(1 - p_near^K).
        let p_table = p_near.powi(k as i32).max(1e-300);
        let l = if p_table >= 1.0 {
            1
        } else {
            ((1.0 - self.recall).ln() / (1.0 - p_table).ln()).ceil() as usize
        };
        let l = l.clamp(1, self.max_tables);

        LshParams {
            k,
            l,
            near: self.near,
            far: self.far,
        }
    }

    /// Section 2.2-style asymptotic parameters: `K` drives `p2^K` below
    /// `1/n`, `L = ⌈ln(n/δ is fixed at 1/n) / p1^K⌉ = ⌈p1^{-K} ln n⌉`.
    pub fn theory<M: CollisionModel>(&self, model: &M) -> LshParams {
        let p_far = model
            .collision_probability(self.far)
            .clamp(1e-12, 1.0 - 1e-12);
        let p_near = model
            .collision_probability(self.near)
            .clamp(1e-12, 1.0 - 1e-12);
        assert!(
            p_near > p_far,
            "collision model must separate near ({p_near}) from far ({p_far})"
        );
        let n = self.n.max(2) as f64;

        // p_far^K <= 1/n  =>  K >= ln(n) / ln(1/p_far).
        let k = (n.ln() / (1.0 / p_far).ln()).ceil() as usize;
        let k = k.clamp(1, self.max_rows);

        let p_table = p_near.powi(k as i32).max(1e-300);
        let l = ((n.ln() / p_table).ceil() as usize).clamp(1, self.max_tables);

        LshParams {
            k,
            l,
            near: self.near,
            far: self.far,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::{MinHash, OneBitMinHash};

    #[test]
    fn empirical_params_meet_both_targets() {
        let builder = ParamsBuilder::new(2112, 0.2, 0.1);
        let params = builder.empirical(&OneBitMinHash);
        // Far collisions per table within budget.
        assert!(
            params.expected_collisions(&OneBitMinHash, 0.1, 2112) / params.l as f64
                <= builder.far_collision_budget * 1.001,
            "far collisions per table exceed budget"
        );
        // Recall at the near threshold at least 99 %.
        assert!(
            params.retrieval_probability(&OneBitMinHash, 0.2) >= 0.99,
            "recall too low: {}",
            params.retrieval_probability(&OneBitMinHash, 0.2)
        );
    }

    #[test]
    fn empirical_params_scale_with_threshold() {
        let b = ParamsBuilder::new(10_000, 0.3, 0.1);
        let loose = b.empirical(&MinHash);
        let tight = ParamsBuilder::new(10_000, 0.15, 0.1).empirical(&MinHash);
        // Searching at a lower similarity threshold needs more repetitions.
        assert!(tight.l >= loose.l, "tight {tight:?} loose {loose:?}");
    }

    #[test]
    fn theory_params_drive_p2_below_one_over_n() {
        let n = 5_000;
        let b = ParamsBuilder::new(n, 0.4, 0.1);
        let params = b.theory(&MinHash);
        let p2_k = MinHash.collision_probability(0.1).powi(params.k as i32);
        assert!(p2_k <= 1.0 / n as f64 * 1.0001);
        assert!(params.retrieval_probability(&MinHash, 0.4) > 0.9);
    }

    #[test]
    fn retrieval_probability_is_monotone_in_similarity() {
        let params = LshParams::explicit(8, 50, 0.2, 0.1);
        let mut prev = 0.0;
        for i in 0..=10 {
            let s = i as f64 / 10.0;
            let p = params.retrieval_probability(&OneBitMinHash, s);
            assert!(p >= prev - 1e-12, "not monotone at s = {s}");
            prev = p;
        }
        assert!(prev > 0.999); // identical points are always retrieved
    }

    #[test]
    fn expected_collisions_scales_linearly_with_count_and_tables() {
        let params = LshParams::explicit(4, 10, 0.2, 0.1);
        let one = params.expected_collisions(&OneBitMinHash, 0.1, 1);
        let hundred = params.expected_collisions(&OneBitMinHash, 0.1, 100);
        assert!((hundred - 100.0 * one).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "separate near")]
    fn builder_rejects_inverted_thresholds() {
        // Near similarity below far similarity => model cannot separate them.
        let b = ParamsBuilder::new(100, 0.1, 0.5);
        let _ = b.empirical(&MinHash);
    }

    #[test]
    fn builder_overrides() {
        let b = ParamsBuilder::new(1000, 0.3, 0.1)
            .with_recall(0.999)
            .with_far_collision_budget(1.0);
        let strict = b.empirical(&OneBitMinHash);
        let lax = ParamsBuilder::new(1000, 0.3, 0.1).empirical(&OneBitMinHash);
        assert!(strict.k >= lax.k);
        assert!(strict.l >= lax.l);
    }

    #[test]
    #[should_panic(expected = "K must be at least 1")]
    fn explicit_rejects_zero_k() {
        let _ = LshParams::explicit(0, 1, 0.2, 0.1);
    }
}
