//! LSH family abstractions.
//!
//! A *hasher* maps a point to a 64-bit token; two points "collide" under the
//! hasher when their tokens are equal. A *family* is a distribution over
//! hashers together with a model of the collision probability as a function
//! of similarity (Definition 3 of the paper). The collision model is what
//! parameter selection (`K`, `L`) is computed from, exactly as in the
//! paper's Section 6 setup.

use rand::Rng;

/// A single locality-sensitive hash function.
///
/// Tokens are `u64`; equality of tokens defines a collision. Concatenations
/// of several hashers are combined into a single token by
/// [`crate::ConcatenatedHasher`].
pub trait LshHasher<P> {
    /// Hashes one point to its token.
    fn hash(&self, point: &P) -> u64;

    /// Hashes a batch of points. The default implementation simply maps
    /// [`LshHasher::hash`]; families with shared per-batch work may override
    /// it.
    fn hash_batch(&self, points: &[P]) -> Vec<u64> {
        points.iter().map(|p| self.hash(p)).collect()
    }

    /// Row-batched evaluation: writes `out[i] = rows[i].hash(point)` for
    /// every hasher in `rows` (`out.len()` must equal `rows.len()`).
    ///
    /// The default implementation makes one pass over the point per row.
    /// Families whose evaluation streams the point's data override it with a
    /// *single* pass that advances all rows per element — one item load
    /// updates every running minimum for MinHash, and SimHash / p-stable use
    /// a blocked matrix–vector product — which is what makes the query hot
    /// path bound by one traversal of the point instead of `K × L`
    /// re-traversals. Implementations must be bit-for-bit equivalent to the
    /// per-row default; the property suite checks this for every family.
    fn hash_all(rows: &[Self], point: &P, out: &mut [u64])
    where
        Self: Sized,
    {
        debug_assert_eq!(rows.len(), out.len(), "one output slot per row");
        for (slot, row) in out.iter_mut().zip(rows) {
            *slot = row.hash(point);
        }
    }
}

/// Model of the collision probability of a family as a function of the
/// similarity (or distance) between two points.
///
/// The orientation matters: for similarity measures (Jaccard, inner product)
/// the probability is *increasing* in the argument, for distances it is
/// *decreasing*. The samplers only need the values at the near threshold
/// `r` and the far threshold `cr`, i.e. `p1` and `p2` of Definition 3.
pub trait CollisionModel {
    /// Probability that two points at similarity (or distance) `x` collide
    /// under a single hasher drawn from the family.
    fn collision_probability(&self, x: f64) -> f64;

    /// `ρ = log(1/p1) / log(1/p2)` for the given near/far thresholds —
    /// the exponent in the `n^ρ` query-time bound.
    fn rho(&self, near: f64, far: f64) -> f64 {
        let p1 = self
            .collision_probability(near)
            .clamp(f64::MIN_POSITIVE, 1.0);
        let p2 = self
            .collision_probability(far)
            .clamp(f64::MIN_POSITIVE, 1.0);
        if p1 >= 1.0 {
            return 0.0;
        }
        (1.0 / p1).ln() / (1.0 / p2).ln()
    }
}

/// A distribution over LSH hashers for point type `P`.
pub trait LshFamily<P>: CollisionModel {
    /// The hasher type this family samples.
    type Hasher: LshHasher<P>;

    /// Draws one hasher from the family.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Hasher;

    /// Draws `count` independent hashers from the family.
    fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<Self::Hasher> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy family over integers used to test the trait plumbing: points
    /// collide when they fall in the same residue class modulo `m`.
    struct ModuloFamily {
        m: u64,
    }

    struct ModuloHasher {
        m: u64,
        offset: u64,
    }

    impl LshHasher<u64> for ModuloHasher {
        fn hash(&self, point: &u64) -> u64 {
            (point + self.offset) % self.m
        }
    }

    impl CollisionModel for ModuloFamily {
        fn collision_probability(&self, x: f64) -> f64 {
            // Pretend collision probability decays linearly with distance.
            (1.0 - x / self.m as f64).clamp(0.0, 1.0)
        }
    }

    impl LshFamily<u64> for ModuloFamily {
        type Hasher = ModuloHasher;

        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ModuloHasher {
            ModuloHasher {
                m: self.m,
                offset: rng.random_range(0..self.m),
            }
        }
    }

    #[test]
    fn sample_many_returns_requested_count() {
        use rand::SeedableRng;
        let family = ModuloFamily { m: 8 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let hashers = family.sample_many(&mut rng, 5);
        assert_eq!(hashers.len(), 5);
    }

    #[test]
    fn hash_batch_matches_individual_hashes() {
        let hasher = ModuloHasher { m: 10, offset: 3 };
        let points = vec![1u64, 5, 9, 17];
        let batch = hasher.hash_batch(&points);
        for (p, h) in points.iter().zip(batch.iter()) {
            assert_eq!(hasher.hash(p), *h);
        }
    }

    #[test]
    fn rho_is_between_zero_and_one_for_monotone_models() {
        let family = ModuloFamily { m: 100 };
        let rho = family.rho(10.0, 50.0);
        assert!(rho > 0.0 && rho < 1.0, "rho = {rho}");
    }

    #[test]
    fn rho_is_zero_when_near_points_always_collide() {
        let family = ModuloFamily { m: 100 };
        assert_eq!(family.rho(0.0, 50.0), 0.0);
    }
}
