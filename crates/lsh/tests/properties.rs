//! Property-based tests for the LSH substrate.

use fairnn_lsh::{
    CollisionModel, ConcatenatedFamily, ConcatenatedHasher, LshFamily, LshHasher, LshIndex,
    LshParams, MinHash, MinHasher, OneBitMinHash, PStableLsh, ParamsBuilder, SimHash,
};
use fairnn_space::{DenseVector, PointId, SparseSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_set() -> impl Strategy<Value = SparseSet> {
    proptest::collection::vec(0u32..500, 1..40).prop_map(SparseSet::from_items)
}

fn arb_vector() -> impl Strategy<Value = DenseVector> {
    proptest::collection::vec(-5.0f64..5.0, 8).prop_map(DenseVector::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn minhash_is_deterministic_per_seed(set in arb_set(), seed in 0u64..10_000) {
        let h1 = MinHasher::from_seed(seed);
        let h2 = MinHasher::from_seed(seed);
        prop_assert_eq!(h1.hash(&set), h2.hash(&set));
    }

    #[test]
    fn identical_points_always_collide_under_any_family(set in arb_set(), seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mh = MinHash.sample(&mut rng);
        prop_assert_eq!(mh.hash(&set), mh.hash(&set));
        let ob = OneBitMinHash.sample(&mut rng);
        prop_assert_eq!(ob.hash(&set), ob.hash(&set));
    }

    #[test]
    fn one_bit_minhash_outputs_single_bits(set in arb_set(), seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = OneBitMinHash.sample(&mut rng);
        prop_assert!(h.hash(&set) <= 1);
    }

    #[test]
    fn collision_models_are_monotone(s1 in 0.0f64..1.0, s2 in 0.0f64..1.0) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(MinHash.collision_probability(lo) <= MinHash.collision_probability(hi) + 1e-12);
        prop_assert!(OneBitMinHash.collision_probability(lo) <= OneBitMinHash.collision_probability(hi) + 1e-12);
        // SimHash is monotone in the inner-product similarity as well.
        let sim = SimHash::new(8);
        prop_assert!(sim.collision_probability(lo) <= sim.collision_probability(hi) + 1e-12);
    }

    #[test]
    fn pstable_collision_probability_is_antitone_in_distance(d1 in 0.01f64..20.0, d2 in 0.01f64..20.0) {
        let family = PStableLsh::new(8, 4.0);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(family.collision_probability(lo) >= family.collision_probability(hi) - 1e-12);
    }

    #[test]
    fn concatenation_collision_probability_is_base_to_the_k(s in 0.0f64..1.0, k in 1usize..12) {
        let fam = ConcatenatedFamily::new(OneBitMinHash, k);
        let expected = OneBitMinHash.collision_probability(s).powi(k as i32);
        prop_assert!((fam.collision_probability(s) - expected).abs() < 1e-12);
    }

    #[test]
    fn empirical_params_always_meet_recall(n in 50usize..5000, r in 0.15f64..0.6) {
        let params = ParamsBuilder::new(n, r, 0.1).empirical(&OneBitMinHash);
        prop_assert!(params.retrieval_probability(&OneBitMinHash, r) >= 0.99 - 1e-9);
        prop_assert!(params.k >= 1 && params.l >= 1);
    }

    #[test]
    fn index_stores_every_point_once_per_table(
        sets in proptest::collection::vec(arb_set(), 2..30),
        seed in 0u64..500,
        k in 1usize..4,
        l in 1usize..6,
    ) {
        let params = LshParams::explicit(k, l, 0.5, 0.1);
        let mut rng = StdRng::seed_from_u64(seed);
        let index = LshIndex::build(&MinHash, params, &sets, &mut rng);
        prop_assert_eq!(index.num_tables(), l);
        prop_assert_eq!(index.total_entries(), sets.len() * l);
        // Self-collision: every point must find itself.
        for (i, s) in sets.iter().enumerate() {
            prop_assert!(index.colliding_ids(s).contains(&PointId::from_index(i)));
        }
    }

    #[test]
    fn colliding_ids_are_unique_and_in_range(
        sets in proptest::collection::vec(arb_set(), 2..30),
        seed in 0u64..500,
    ) {
        let params = LshParams::explicit(2, 5, 0.5, 0.1);
        let mut rng = StdRng::seed_from_u64(seed);
        let index = LshIndex::build(&OneBitMinHash, params, &sets, &mut rng);
        let ids = index.colliding_ids(&sets[0]);
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        prop_assert_eq!(unique.len(), ids.len());
        for id in ids {
            prop_assert!(id.index() < sets.len());
        }
    }

    #[test]
    fn simhash_collides_identically_scaled_vectors(v in arb_vector(), scale in 0.1f64..10.0, seed in 0u64..1000) {
        prop_assume!(v.norm() > 1e-6);
        let mut rng = StdRng::seed_from_u64(seed);
        let h = SimHash::new(8).sample(&mut rng);
        let scaled = DenseVector::new(v.values().iter().map(|x| x * scale).collect());
        prop_assert_eq!(h.hash(&v), h.hash(&scaled));
    }

    #[test]
    fn concatenated_hasher_arity_matches(k in 1usize..10, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hasher: ConcatenatedHasher<_> = ConcatenatedFamily::new(MinHash, k).sample(&mut rng);
        prop_assert_eq!(hasher.arity(), k);
        prop_assert_eq!(hasher.rows().len(), k);
    }

    // ---- batched hashing: hash_all must be bit-identical to per-row hash ----

    #[test]
    fn minhash_hash_all_matches_per_row(set in arb_set(), seed in 0u64..1000, rows in 1usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hashers = MinHash.sample_many(&mut rng, rows);
        let mut out = vec![0u64; rows];
        LshHasher::hash_all(&hashers, &set, &mut out);
        for (h, got) in hashers.iter().zip(&out) {
            prop_assert_eq!(h.hash(&set), *got);
        }
        let one_bit = OneBitMinHash.sample_many(&mut rng, rows);
        LshHasher::hash_all(&one_bit, &set, &mut out);
        for (h, got) in one_bit.iter().zip(&out) {
            prop_assert_eq!(h.hash(&set), *got);
        }
    }

    #[test]
    fn dense_hash_all_matches_per_row(v in arb_vector(), seed in 0u64..1000, rows in 1usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sim = SimHash::new(8).sample_many(&mut rng, rows);
        let mut out = vec![0u64; rows];
        LshHasher::hash_all(&sim, &v, &mut out);
        for (h, got) in sim.iter().zip(&out) {
            prop_assert_eq!(h.hash(&v), *got);
        }
        let pstable = PStableLsh::new(8, 4.0).sample_many(&mut rng, rows);
        LshHasher::hash_all(&pstable, &v, &mut out);
        for (h, got) in pstable.iter().zip(&out) {
            prop_assert_eq!(h.hash(&v), *got);
        }
    }

    #[test]
    fn concatenated_hash_all_matches_per_table(
        set in arb_set(),
        seed in 0u64..1000,
        k in 1usize..6,
        l in 1usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Shared-bank layout (the one LshIndex::build produces): the batched
        // path takes the single-pass fast path.
        let bank = ConcatenatedHasher::bank(MinHash.sample_many(&mut rng, k * l), k);
        let mut out = vec![0u64; l];
        LshHasher::hash_all(&bank, &set, &mut out);
        for (h, got) in bank.iter().zip(&out) {
            prop_assert_eq!(h.hash(&set), *got);
        }
        // Independently-built tables (no shared bank): the fallback path.
        let fam = ConcatenatedFamily::new(MinHash, k);
        let tables: Vec<ConcatenatedHasher<_>> = (0..l).map(|_| fam.sample(&mut rng)).collect();
        LshHasher::hash_all(&tables, &set, &mut out);
        for (h, got) in tables.iter().zip(&out) {
            prop_assert_eq!(h.hash(&set), *got);
        }
    }

    // ---- frozen CSR storage: bit-identical buckets, contents and order ----

    #[test]
    fn frozen_table_matches_staging_buckets(
        inserts in proptest::collection::vec((0u64..32, 0u32..100), 1..120),
    ) {
        use fairnn_lsh::LshTable;
        use std::collections::HashMap;
        // Reference: the plain staging form.
        let mut reference: HashMap<u64, Vec<PointId>> = HashMap::new();
        let mut table = LshTable::new();
        for &(key, id) in &inserts {
            reference.entry(key).or_default().push(PointId(id));
            table.insert(key, PointId(id));
        }
        prop_assert!(!table.is_frozen());
        table.freeze();
        prop_assert!(table.is_frozen());
        // Identical buckets: contents *and* order, plus identical accounting.
        for (key, bucket) in &reference {
            prop_assert_eq!(table.bucket(*key), bucket.as_slice());
        }
        prop_assert_eq!(table.num_buckets(), reference.len());
        prop_assert_eq!(
            table.num_entries(),
            reference.values().map(Vec::len).sum::<usize>()
        );
        prop_assert_eq!(
            table.max_bucket_size(),
            reference.values().map(Vec::len).max().unwrap_or(0)
        );
        // Thaw by mutating, then refreeze: still identical.
        table.insert(1000, PointId(7));
        prop_assert!(!table.is_frozen());
        prop_assert!(table.remove(1000, PointId(7)));
        table.freeze();
        for (key, bucket) in &reference {
            prop_assert_eq!(table.bucket(*key), bucket.as_slice());
        }
    }

    #[test]
    fn frozen_index_queries_match_staging_queries(
        sets in proptest::collection::vec(arb_set(), 2..30),
        seed in 0u64..500,
    ) {
        // The same index queried in frozen form (as built) and after thawing
        // every table via a no-op mutation must return identical results.
        let params = LshParams::explicit(2, 5, 0.5, 0.1);
        let mut rng = StdRng::seed_from_u64(seed);
        let frozen = LshIndex::build(&OneBitMinHash, params, &sets, &mut rng);
        prop_assert!(frozen.is_frozen());
        let mut staged = frozen.clone();
        let probe = sets[0].clone();
        let id = staged.insert_point(&probe);
        staged.remove_point(&probe, id);
        prop_assert!(!staged.is_frozen());
        for s in &sets {
            prop_assert_eq!(frozen.colliding_ids(s), staged.colliding_ids(s));
            prop_assert_eq!(frozen.query_keys(s), staged.query_keys(s));
            prop_assert_eq!(frozen.collision_count(s), staged.collision_count(s));
        }
    }
}
