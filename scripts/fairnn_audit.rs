//! Thin CLI entry for the workspace auditor (the logic lives in
//! `fairnn-audit`; this file only forwards arguments and the exit code).
//!
//! ```text
//! cargo run --release -p fairnn-audit --bin fairnn-audit -- --json AUDIT_report.json
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(fairnn_audit::run_cli(&args));
}
