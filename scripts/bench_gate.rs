//! CI perf-regression gate.
//!
//! Compares freshly measured reports (written by the `engine_throughput`
//! and `build_scaling` binaries on this commit) against the committed
//! `BENCH_baseline.json` and **fails the job** when any tracked figure
//! regressed by more than the threshold (default 35 %, sized for the noise
//! of shared CI runners).
//!
//! Tracked figures:
//!
//! * every sampler in the baseline's `baselines_qps` array (a sampler
//!   missing from the fresh run is itself a failure — a silently dropped
//!   measurement must not pass the gate);
//! * every `pipeline_qps` row whose thread count appears in both files,
//!   *skipping* rows either side marked `"hardware_limited": true` (on a
//!   runner with fewer cores than threads the row measures scheduling
//!   noise, not the engine);
//! * the `rank_swap_qps` fast-path figure;
//! * the `churn` row (concurrent reader throughput and commit→publish
//!   latency while the generational writer commits): `qps` gates directly
//!   and `publish_ms` gates as a rate (`1e3 / ms`, lower-is-better), both
//!   only when the row is co-measured and neither side is marked
//!   `hardware_limited` (readers + the writer need cores of their own);
//! * the `server` row (written by `server_throughput`: end-to-end HTTP
//!   serving over loopback): `qps` gates directly and each tail latency
//!   (`p50_ns`/`p99_ns`/`p999_ns`) gates as a rate (`1e9 / ns`,
//!   lower-is-better), with the same co-measured + `hardware_limited`
//!   skip — clients, workers, and the accept thread each need a core
//!   before the tails measure the server rather than the scheduler;
//! * every `builds` row (build throughput in points/sec from
//!   `build_scaling`) whose `(structure, scale, threads)` coordinate
//!   appears in both files, with the same `hardware_limited` skip — the
//!   single-thread rows always compare, so a serial build regression fails
//!   the gate even on a 1-core runner;
//! * the `hash_ns_per_point` rows (`batched` and `per_row`): ns/point is
//!   lower-is-better, so the gate converts each to points/sec (`1e9 / ns`)
//!   and applies the same regression math. A baseline row missing from the
//!   fresh report fails the gate (that silent drop is exactly how the
//!   7.9 µs → 11.6 µs drift landed unnoticed), unless the fresh object is
//!   marked `hardware_limited`;
//! * every snapshot `cycles` row (written by `snapshot_cycle`) whose
//!   `(structure, scale, threads)` coordinate appears in both files:
//!   **load time** gates as a rate (`1e9 / load_ns`, same skip rules as
//!   builds — `hardware_limited` rows and loads under 5 ms don't gate) and
//!   **`load_large_allocs`** gates on an absolute budget: the count is
//!   deterministic under the one-buffer image path, so any fresh count more
//!   than 2 above baseline fails regardless of the percentage threshold;
//! * the fresh report's `obs_overhead` row — an **absolute** budget, not a
//!   baseline comparison: the fairnn-obs-instrumented engine pipeline must
//!   stay within 3 % of the uninstrumented one. Runs too short to measure
//!   reliably (`measured_s` below 50 ms) do not gate.
//!
//! Usage: `bench_gate <fresh.json>... <baseline.json>
//!         [--max-regression 0.35]`
//!
//! Several fresh reports may be passed (engine + build + snapshot); their
//! top-level keys are merged, later files winning, and compared against the
//! single baseline (the last path).
//!
//! Exit code 0 = within budget, 1 = regression (or unreadable input). To
//! land a PR with a known, accepted slowdown, apply the `perf-override`
//! label — the workflow skips this gate when the label is present — and say
//! why in the PR description.
//!
//! The JSON parser below is a ~100-line recursive-descent reader for the
//! subset these reports use (objects, arrays, strings, f64 numbers, bools,
//! null); the workspace has no registry access, so no serde.

use std::collections::BTreeMap;
use std::fmt;
use std::process::ExitCode;

/// A parsed JSON value (the subset the bench reports use).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Recursive-descent JSON parser over a byte cursor.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing input at byte {}", parser.pos));
        }
        Ok(value)
    }

    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek()? != byte {
            return Err(format!(
                "expected '{}' at byte {}, found '{}'",
                byte as char, self.pos, self.bytes[self.pos] as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found '{}'",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found '{}'",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or("unterminated string")?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let escaped = *self.bytes.get(self.pos + 1).ok_or("unterminated escape")?;
                    out.push(match escaped {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        other => {
                            return Err(format!("unsupported escape '\\{}'", other as char));
                        }
                    });
                    self.pos += 2;
                }
                byte => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| byte >= 0x80 && (*b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

/// One tracked figure's comparison.
struct Comparison {
    name: String,
    baseline_qps: f64,
    fresh_qps: Option<f64>,
}

impl Comparison {
    /// Fractional regression (positive = slower than baseline). A missing
    /// fresh measurement counts as a total regression.
    fn regression(&self) -> f64 {
        match self.fresh_qps {
            Some(fresh) if self.baseline_qps > 0.0 => 1.0 - fresh / self.baseline_qps,
            Some(_) => 0.0,
            None => 1.0,
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.fresh_qps {
            Some(fresh) => write!(
                f,
                "{:<28} baseline {:>12.1} q/s   fresh {:>12.1} q/s   change {:>+7.1}%",
                self.name,
                self.baseline_qps,
                fresh,
                -self.regression() * 100.0
            ),
            None => write!(
                f,
                "{:<28} baseline {:>12.1} q/s   fresh      MISSING",
                self.name, self.baseline_qps
            ),
        }
    }
}

/// Extracts `name → qps` from a `baselines_qps`-style array.
fn sampler_qps(report: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(rows) = report.get("baselines_qps").and_then(Json::as_array) {
        for row in rows {
            if let (Some(name), Some(qps)) = (
                row.get("sampler").and_then(Json::as_str),
                row.get("qps").and_then(Json::as_f64),
            ) {
                out.insert(name.to_string(), qps);
            }
        }
    }
    out
}

/// Extracts `threads → qps` from `pipeline_qps`, dropping rows marked
/// `hardware_limited` (see the module docs).
fn pipeline_qps(report: &Json) -> BTreeMap<u64, f64> {
    let mut out = BTreeMap::new();
    if let Some(rows) = report.get("pipeline_qps").and_then(Json::as_array) {
        for row in rows {
            let limited = row
                .get("hardware_limited")
                .and_then(Json::as_bool)
                .unwrap_or(false);
            if limited {
                continue;
            }
            if let (Some(threads), Some(qps)) = (
                row.get("threads").and_then(Json::as_f64),
                row.get("qps").and_then(Json::as_f64),
            ) {
                out.insert(threads as u64, qps);
            }
        }
    }
    out
}

/// Extracts the gated figures from a report's `churn` row (concurrent
/// reader q/s under generational commits, and the commit→publish latency
/// converted to commits/sec so the shared higher-is-better regression math
/// applies). A row marked `hardware_limited` contributes nothing: with
/// fewer cores than readers + writer the q/s measures the scheduler.
fn churn_rates(report: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(row) = report.get("churn") {
        let limited = row
            .get("hardware_limited")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        if limited {
            return out;
        }
        if let Some(qps) = row.get("qps").and_then(Json::as_f64) {
            out.insert("concurrent-qps".to_string(), qps);
        }
        if let Some(ms) = row.get("publish_ms").and_then(Json::as_f64) {
            if ms > 0.0 {
                out.insert("publish-rate".to_string(), 1e3 / ms);
            }
        }
    }
    out
}

/// Extracts the gated figures from a report's `server` row (end-to-end
/// HTTP throughput and tail latencies from `server_throughput`). The
/// tails are lower-is-better nanoseconds, converted to rates (`1e9 / ns`)
/// so the shared regression math applies. A row marked `hardware_limited`
/// contributes nothing: with fewer cores than clients + workers + the
/// accept thread, the tails measure scheduler queueing, not the server.
fn server_rates(report: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(row) = report.get("server") {
        let limited = row
            .get("hardware_limited")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        if limited {
            return out;
        }
        if let Some(qps) = row.get("qps").and_then(Json::as_f64) {
            out.insert("qps".to_string(), qps);
        }
        for key in ["p50_ns", "p99_ns", "p999_ns"] {
            if let Some(ns) = row.get(key).and_then(Json::as_f64) {
                if ns > 0.0 {
                    let tail = key.trim_end_matches("_ns");
                    out.insert(format!("{tail}-rate"), 1e9 / ns);
                }
            }
        }
    }
    out
}

/// Builds measured below this wall time do not gate: a sub-millisecond
/// smoke build is dominated by scheduler noise on a shared runner, so its
/// points/sec would trip the 35 % threshold without any code change. The
/// larger smoke scales comfortably clear this bar and carry the gate.
const MIN_GATED_BUILD_S: f64 = 0.005;

/// Extracts `(structure, scale, threads) → points/sec` from a `builds`
/// array (written by `build_scaling`), dropping rows marked
/// `hardware_limited` and rows too short to measure reliably.
fn build_throughput(report: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(rows) = report.get("builds").and_then(Json::as_array) {
        for row in rows {
            let limited = row
                .get("hardware_limited")
                .and_then(Json::as_bool)
                .unwrap_or(false);
            if limited {
                continue;
            }
            let too_short = row
                .get("build_s")
                .and_then(Json::as_f64)
                .is_some_and(|s| s < MIN_GATED_BUILD_S);
            if too_short {
                continue;
            }
            if let (Some(structure), Some(scale), Some(threads), Some(pps)) = (
                row.get("structure").and_then(Json::as_str),
                row.get("scale").and_then(Json::as_f64),
                row.get("threads").and_then(Json::as_f64),
                row.get("points_per_s").and_then(Json::as_f64),
            ) {
                out.insert(
                    format!("{structure}/scale-{scale}/{}t", threads as u64),
                    pps,
                );
            }
        }
    }
    out
}

/// Extracts gated hashing figures from the `hash_ns_per_point` object.
/// ns/point is lower-is-better, so each row is converted to points/sec
/// (`1e9 / ns`) to reuse the higher-is-better regression math. An object
/// marked `hardware_limited` contributes nothing (the current measurement
/// is serial and never sets the flag, but the skip convention is uniform).
fn hash_throughput(report: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(row) = report.get("hash_ns_per_point") {
        if hash_hardware_limited(report) {
            return out;
        }
        for key in ["batched", "per_row"] {
            if let Some(ns) = row.get(key).and_then(Json::as_f64) {
                if ns > 0.0 {
                    out.insert(key.to_string(), 1e9 / ns);
                }
            }
        }
    }
    out
}

/// Whether the report's `hash_ns_per_point` object is flagged
/// `hardware_limited`. When the *fresh* side is limited, its baseline rows
/// are skipped rather than counted as missing.
fn hash_hardware_limited(report: &Json) -> bool {
    report
        .get("hash_ns_per_point")
        .and_then(|row| row.get("hardware_limited"))
        .and_then(Json::as_bool)
        .unwrap_or(false)
}

/// Snapshot loads measured below this wall time do not gate on throughput:
/// a sub-5-ms image load swings with scheduler noise, not code. The
/// large-allocation count still gates — it is deterministic at any speed.
const MIN_GATED_LOAD_S: f64 = 0.005;

/// Extracts `(structure, scale, threads) → loads-equivalent rate`
/// (`1e9 / load_ns`) from a snapshot `cycles` array, dropping rows marked
/// `hardware_limited` and loads too short to time reliably.
fn snapshot_load_rates(report: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for (key, row) in snapshot_cycle_rows(report) {
        let limited = row
            .get("hardware_limited")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let too_short = row
            .get("load_s")
            .and_then(Json::as_f64)
            .is_some_and(|s| s < MIN_GATED_LOAD_S);
        if limited || too_short {
            continue;
        }
        if let Some(ns) = row.get("load_ns").and_then(Json::as_f64) {
            if ns > 0.0 {
                out.insert(key, 1e9 / ns);
            }
        }
    }
    out
}

/// A fresh load may take at most this many more ≥ 64 KiB allocations than
/// the baseline's. The count is a deterministic property of the load path
/// (one image buffer, O(1) bookkeeping), so the budget is absolute: a
/// return to per-section copies blows through it at any scale, while
/// adding a couple of intentional buffers forces a baseline refresh.
const MAX_EXTRA_LARGE_ALLOCS: f64 = 2.0;

/// Extracts `(structure, scale, threads) → load_large_allocs` from a
/// snapshot `cycles` array. No noise filtering: allocation counts are
/// exact regardless of runner speed or oversubscription.
fn snapshot_large_allocs(report: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for (key, row) in snapshot_cycle_rows(report) {
        if let Some(count) = row.get("load_large_allocs").and_then(Json::as_f64) {
            out.insert(key, count);
        }
    }
    out
}

/// Iterates a report's snapshot `cycles` rows as
/// `("structure/scale-S/Tt", row)` pairs.
fn snapshot_cycle_rows(report: &Json) -> Vec<(String, &Json)> {
    let mut out = Vec::new();
    if let Some(rows) = report.get("cycles").and_then(Json::as_array) {
        for row in rows {
            if let (Some(structure), Some(scale), Some(threads)) = (
                row.get("structure").and_then(Json::as_str),
                row.get("scale").and_then(Json::as_f64),
                row.get("threads").and_then(Json::as_f64),
            ) {
                out.push((
                    format!("{structure}/scale-{scale}/{}t", threads as u64),
                    row,
                ));
            }
        }
    }
    out
}

/// Checks the deterministic large-allocation budget on every co-measured
/// snapshot cycle coordinate; returns the failure descriptions.
fn check_snapshot_allocs(fresh: &Json, baseline: &Json) -> Vec<String> {
    let fresh_allocs = snapshot_large_allocs(fresh);
    let mut failures = Vec::new();
    for (key, base) in snapshot_large_allocs(baseline) {
        if let Some(&count) = fresh_allocs.get(&key) {
            if count > base + MAX_EXTRA_LARGE_ALLOCS {
                failures.push(format!(
                    "snapshot-load/{key}: {count:.0} large allocation(s) vs baseline {base:.0} \
                     (budget +{MAX_EXTRA_LARGE_ALLOCS:.0}) — the O(1) image load regressed \
                     toward per-section copies"
                ));
            }
        }
    }
    failures
}

/// Instrumentation may cost at most this much engine-pipeline throughput
/// (absolute budget from the observability PR's acceptance criteria).
const MAX_OBS_OVERHEAD_PCT: f64 = 3.0;

/// Overhead rows measured over less total wall time than this are
/// scheduler noise on a shared runner and do not gate.
const MIN_OBS_MEASURED_S: f64 = 0.05;

/// Checks the fresh report's `obs_overhead` row against the absolute
/// budget. Returns `Ok(Some(description))` when the row was gated and
/// passed, `Ok(None)` when absent or too short to judge, `Err(message)`
/// when over budget.
fn check_obs_overhead(fresh: &Json) -> Result<Option<String>, String> {
    let Some(row) = fresh.get("obs_overhead") else {
        return Ok(None);
    };
    let Some(pct) = row.get("overhead_pct").and_then(Json::as_f64) else {
        return Err("obs_overhead row lacks a numeric overhead_pct".into());
    };
    let measured_s = row
        .get("measured_s")
        .and_then(Json::as_f64)
        .unwrap_or(f64::INFINITY);
    if measured_s < MIN_OBS_MEASURED_S {
        return Ok(Some(format!(
            "obs-overhead: measured over only {measured_s:.3} s — too noisy to gate, skipped"
        )));
    }
    if pct > MAX_OBS_OVERHEAD_PCT {
        return Err(format!(
            "instrumented engine pipeline is {pct:.2}% slower than uninstrumented \
             (budget {MAX_OBS_OVERHEAD_PCT:.0}%)"
        ));
    }
    Ok(Some(format!(
        "obs-overhead: {pct:+.2}% (budget {MAX_OBS_OVERHEAD_PCT:.0}%)"
    )))
}

/// Builds the full comparison list between two reports.
fn compare_reports(fresh: &Json, baseline: &Json) -> Vec<Comparison> {
    let mut comparisons = Vec::new();

    let fresh_samplers = sampler_qps(fresh);
    for (name, base_qps) in sampler_qps(baseline) {
        comparisons.push(Comparison {
            fresh_qps: fresh_samplers.get(&name).copied(),
            name: format!("sampler/{name}"),
            baseline_qps: base_qps,
        });
    }

    let fresh_pipeline = pipeline_qps(fresh);
    for (threads, base_qps) in pipeline_qps(baseline) {
        // A thread count absent from the fresh report is not a regression:
        // the fresh run may have marked it hardware-limited (runner downsized)
        // or run with a different --threads. Only co-measured rows gate.
        if let Some(&fresh_qps) = fresh_pipeline.get(&threads) {
            comparisons.push(Comparison {
                name: format!("pipeline/{threads}-thread"),
                baseline_qps: base_qps,
                fresh_qps: Some(fresh_qps),
            });
        }
    }

    if let Some(base_qps) = baseline.get("rank_swap_qps").and_then(Json::as_f64) {
        comparisons.push(Comparison {
            name: "rank-swap-fast-path".to_string(),
            baseline_qps: base_qps,
            fresh_qps: fresh.get("rank_swap_qps").and_then(Json::as_f64),
        });
    }

    // Concurrent churn: like the pipeline rows, only co-measured figures
    // gate — a fresh run marked hardware_limited (1-core PR runner) or an
    // older baseline without the row skips rather than fails.
    let fresh_churn = churn_rates(fresh);
    for (key, base_rate) in churn_rates(baseline) {
        if let Some(&fresh_rate) = fresh_churn.get(&key) {
            comparisons.push(Comparison {
                name: format!("churn/{key}"),
                baseline_qps: base_rate,
                fresh_qps: Some(fresh_rate),
            });
        }
    }

    // HTTP serving: same co-measurement policy as churn — a 1-core PR
    // runner marks the row hardware_limited and skips, and a baseline
    // predating the server contributes nothing.
    let fresh_server = server_rates(fresh);
    for (key, base_rate) in server_rates(baseline) {
        if let Some(&fresh_rate) = fresh_server.get(&key) {
            comparisons.push(Comparison {
                name: format!("server/{key}"),
                baseline_qps: base_rate,
                fresh_qps: Some(fresh_rate),
            });
        }
    }

    // Hashing kernel: a baseline row missing from the fresh report IS a
    // failure (the `fresh_qps: None` total-regression path), because a
    // silently dropped hash measurement is exactly how the last drift
    // landed. Only a fresh run flagged hardware_limited skips instead.
    if !hash_hardware_limited(fresh) {
        let fresh_hash = hash_throughput(fresh);
        for (key, base_rate) in hash_throughput(baseline) {
            comparisons.push(Comparison {
                fresh_qps: fresh_hash.get(&key).copied(),
                name: format!("hash/{key}"),
                baseline_qps: base_rate,
            });
        }
    }

    // Snapshot load time, as a rate like every other figure. Co-measured,
    // non-limited, non-trivial coordinates only (same policy as builds).
    let fresh_loads = snapshot_load_rates(fresh);
    for (key, base_rate) in snapshot_load_rates(baseline) {
        if let Some(&fresh_rate) = fresh_loads.get(&key) {
            comparisons.push(Comparison {
                name: format!("snapshot-load/{key}"),
                baseline_qps: base_rate,
                fresh_qps: Some(fresh_rate),
            });
        }
    }

    // Build throughput: points/sec behaves exactly like queries/sec in the
    // regression math (higher is better). Only co-measured, non-limited
    // coordinates gate — CI always measures the 1-thread rows, so the
    // serial build path is always covered.
    let fresh_builds = build_throughput(fresh);
    for (key, base_pps) in build_throughput(baseline) {
        if let Some(&fresh_pps) = fresh_builds.get(&key) {
            comparisons.push(Comparison {
                name: format!("build/{key}"),
                baseline_qps: base_pps,
                fresh_qps: Some(fresh_pps),
            });
        }
    }

    comparisons
}

/// Overlays the top-level keys of `extra` onto `base` (later reports win).
fn merge_reports(base: &mut Json, extra: Json) {
    if let (Json::Object(into), Json::Object(from)) = (base, extra) {
        for (key, value) in from {
            into.insert(key, value);
        }
    }
}

/// Applies the threshold; returns the failing comparisons.
fn gate(comparisons: &[Comparison], max_regression: f64) -> Vec<&Comparison> {
    comparisons
        .iter()
        .filter(|c| c.regression() > max_regression)
        .collect()
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut max_regression = 0.35f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--max-regression" {
            max_regression = iter
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or("--max-regression needs a numeric value")?;
        } else {
            paths.push(arg);
        }
    }
    let Some((baseline_path, fresh_paths)) = paths.split_last().filter(|(_, f)| !f.is_empty())
    else {
        return Err(
            "usage: bench_gate <fresh.json>... <baseline.json> [--max-regression 0.35]".into(),
        );
    };

    let mut fresh = Json::Object(BTreeMap::new());
    for path in fresh_paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let report = Parser::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
        merge_reports(&mut fresh, report);
    }
    let baseline_text =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("read {baseline_path}: {e}"))?;
    let baseline =
        Parser::parse(&baseline_text).map_err(|e| format!("parse {baseline_path}: {e}"))?;

    let comparisons = compare_reports(&fresh, &baseline);
    if comparisons.is_empty() {
        return Err("no comparable figures between the two reports".into());
    }
    println!(
        "bench gate: {} tracked figure(s), regression budget {:.0}%",
        comparisons.len(),
        max_regression * 100.0
    );
    for c in &comparisons {
        println!("  {c}");
    }

    let obs_failure = match check_obs_overhead(&fresh) {
        Ok(status) => {
            if let Some(line) = status {
                println!("  {line}");
            }
            None
        }
        Err(message) => Some(message),
    };
    let mut absolute_failures: Vec<String> = check_snapshot_allocs(&fresh, &baseline);
    if let Some(message) = obs_failure {
        absolute_failures.push(message);
    }

    let failures = gate(&comparisons, max_regression);
    if failures.is_empty() && absolute_failures.is_empty() {
        println!("bench gate: PASS");
        Ok(true)
    } else if failures.is_empty() {
        println!("\nbench gate: FAIL — absolute budget exceeded:");
        for message in &absolute_failures {
            println!("  {message}");
        }
        println!(
            "\nAbsolute budgets (obs overhead, load allocation counts) don't move with \
             the baseline; make the hot path cheaper rather than raising the budget."
        );
        Ok(false)
    } else {
        println!(
            "\nbench gate: FAIL — regression beyond {:.0}% on:",
            max_regression * 100.0
        );
        for c in &failures {
            println!("  {c}");
        }
        for message in &absolute_failures {
            println!("  {message}");
        }
        println!(
            "\nIf this slowdown is intended, apply the 'perf-override' label to the PR \
             (the workflow skips the gate) and justify it in the description; \
             refresh BENCH_baseline.json in the same PR when the new level is the new normal."
        );
        Ok(false)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("bench gate: error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(naive: f64, nns: f64, one_thread: f64, limited_two: bool, rank_swap: f64) -> Json {
        let text = format!(
            r#"{{
              "baselines_qps": [
                {{"sampler": "naive-fair-lsh", "qps": {naive}}},
                {{"sampler": "fair-nns", "qps": {nns}}}
              ],
              "pipeline_qps": [
                {{"threads": 1, "qps": {one_thread}, "hardware_limited": false}},
                {{"threads": 2, "qps": 11.0, "hardware_limited": {limited_two}}}
              ],
              "rank_swap_qps": {rank_swap}
            }}"#
        );
        Parser::parse(&text).expect("valid report")
    }

    #[test]
    fn parser_handles_the_report_shape() {
        let json = report(100.0, 200.0, 50.0, true, 1e6);
        assert_eq!(json.get("rank_swap_qps").and_then(Json::as_f64), Some(1e6));
        assert_eq!(sampler_qps(&json).len(), 2);
        // The hardware-limited 2-thread row is dropped.
        assert_eq!(pipeline_qps(&json).len(), 1);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(Parser::parse("{").is_err());
        assert!(Parser::parse("[1, 2,,]").is_err());
        assert!(Parser::parse("{\"a\": 1} trailing").is_err());
        assert!(Parser::parse("nul").is_err());
    }

    #[test]
    fn parser_handles_scalars_arrays_strings() {
        assert_eq!(Parser::parse("-3.5e2"), Ok(Json::Number(-350.0)));
        assert_eq!(Parser::parse(r#""a\"b""#), Ok(Json::String("a\"b".into())));
        assert_eq!(
            Parser::parse("[true, null]")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            2
        );
        assert_eq!(Parser::parse("[]"), Ok(Json::Array(vec![])));
        assert_eq!(Parser::parse("{}"), Ok(Json::Object(BTreeMap::new())));
    }

    #[test]
    fn within_budget_passes() {
        let baseline = report(100.0, 200.0, 50.0, false, 1000.0);
        let fresh = report(80.0, 190.0, 40.0, false, 900.0); // worst: -20%
        let comparisons = compare_reports(&fresh, &baseline);
        assert_eq!(comparisons.len(), 5); // 2 samplers + 2 pipeline rows + rank swap
        assert!(gate(&comparisons, 0.35).is_empty());
    }

    #[test]
    fn deep_regression_fails() {
        let baseline = report(100.0, 200.0, 50.0, false, 1000.0);
        let fresh = report(60.0, 190.0, 48.0, false, 990.0); // naive: -40%
        let comparisons = compare_reports(&fresh, &baseline);
        let failures = gate(&comparisons, 0.35);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].name, "sampler/naive-fair-lsh");
        assert!(failures[0].regression() > 0.35);
    }

    #[test]
    fn missing_sampler_fails() {
        let baseline = report(100.0, 200.0, 50.0, false, 1000.0);
        let fresh = Parser::parse(
            r#"{"baselines_qps": [{"sampler": "fair-nns", "qps": 210.0}],
                "pipeline_qps": [], "rank_swap_qps": 1000.0}"#,
        )
        .unwrap();
        let comparisons = compare_reports(&fresh, &baseline);
        let failures = gate(&comparisons, 0.35);
        assert!(failures
            .iter()
            .any(|c| c.name == "sampler/naive-fair-lsh" && c.fresh_qps.is_none()));
    }

    #[test]
    fn hardware_limited_rows_do_not_gate() {
        let baseline = report(100.0, 200.0, 50.0, false, 1000.0);
        // Fresh run on a 1-core box: 2-thread row is marked limited and its
        // (terrible) number must not fail the gate.
        let fresh = report(100.0, 200.0, 50.0, true, 1000.0);
        let comparisons = compare_reports(&fresh, &baseline);
        assert!(comparisons.iter().all(|c| c.name != "pipeline/2-thread"));
        assert!(gate(&comparisons, 0.35).is_empty());
    }

    fn build_report(serial_pps: f64, limited_two: bool) -> Json {
        let text = format!(
            r#"{{
              "bench": "build_scaling",
              "builds": [
                {{"structure": "fair-nnis", "scale": 0.05, "threads": 1, "build_s": 0.05, "points_per_s": {serial_pps}, "hardware_limited": false}},
                {{"structure": "fair-nnis", "scale": 0.05, "threads": 2, "build_s": 0.05, "points_per_s": 999.0, "hardware_limited": {limited_two}}},
                {{"structure": "fair-nnis", "scale": 0.01, "threads": 1, "build_s": 0.0004, "points_per_s": 50000.0, "hardware_limited": false}}
              ]
            }}"#
        );
        Parser::parse(&text).expect("valid build report")
    }

    #[test]
    fn sub_millisecond_builds_do_not_gate() {
        // The 0.01-scale row is 0.4 ms — pure scheduler noise on a shared
        // runner — and must be dropped on both sides even when its
        // points/sec swings wildly.
        let baseline = build_report(10_000.0, true);
        let fresh = build_report(10_000.0, true);
        assert!(build_throughput(&baseline)
            .keys()
            .all(|k| !k.contains("scale-0.01")));
        let comparisons = compare_reports(&fresh, &baseline);
        assert!(comparisons.iter().all(|c| !c.name.contains("scale-0.01")));
    }

    #[test]
    fn serial_build_regression_fails_the_gate() {
        let baseline = build_report(10_000.0, true);
        let fresh = build_report(5_000.0, true); // serial build 2x slower
        let comparisons = compare_reports(&fresh, &baseline);
        assert_eq!(comparisons.len(), 1, "only the non-limited 1-thread row");
        let failures = gate(&comparisons, 0.35);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].name, "build/fair-nnis/scale-0.05/1t");
    }

    #[test]
    fn hardware_limited_build_rows_do_not_gate() {
        // Baseline measured on a multicore box (2-thread row valid), fresh
        // run on a 1-core runner (2-thread row limited): only the serial
        // row compares, and within budget it passes.
        let baseline = build_report(10_000.0, false);
        let fresh = build_report(9_000.0, true);
        let comparisons = compare_reports(&fresh, &baseline);
        assert!(comparisons.iter().all(|c| !c.name.contains("/2t")));
        assert!(gate(&comparisons, 0.35).is_empty());
    }

    #[test]
    fn merged_fresh_reports_cover_engine_and_build_figures() {
        // The CI invocation: engine and build reports as separate fresh
        // files, one combined baseline.
        let mut fresh = report(100.0, 200.0, 50.0, true, 1000.0);
        merge_reports(&mut fresh, build_report(10_000.0, true));
        let mut baseline = report(100.0, 200.0, 50.0, true, 1000.0);
        merge_reports(&mut baseline, build_report(10_000.0, true));
        let comparisons = compare_reports(&fresh, &baseline);
        assert!(comparisons.iter().any(|c| c.name.starts_with("sampler/")));
        assert!(comparisons.iter().any(|c| c.name.starts_with("build/")));
        assert!(gate(&comparisons, 0.35).is_empty());
    }

    fn hash_report(batched_ns: f64, per_row_ns: f64, limited: bool) -> Json {
        let text = format!(
            r#"{{"hash_ns_per_point": {{"batched": {batched_ns}, "per_row": {per_row_ns},
                 "hardware_limited": {limited}}}}}"#
        );
        Parser::parse(&text).expect("valid hash report")
    }

    #[test]
    fn hash_rows_gate_as_rates() {
        let baseline = hash_report(8000.0, 16000.0, false);
        // 20% more ns/point ≈ 17% rate regression: within budget.
        let fresh = hash_report(9600.0, 16000.0, false);
        let comparisons = compare_reports(&fresh, &baseline);
        assert_eq!(comparisons.len(), 2, "{:?}", comparisons.len());
        assert!(gate(&comparisons, 0.35).is_empty());
        // 8000 → 14000 ns is a 43% rate regression: fails.
        let slow = hash_report(14000.0, 16000.0, false);
        let slow_comparisons = compare_reports(&slow, &baseline);
        let failures = gate(&slow_comparisons, 0.35);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].name, "hash/batched");
    }

    #[test]
    fn missing_hash_row_fails_the_gate() {
        // The drift scenario: the fresh report silently stops emitting the
        // hash figure. That must read as a total regression, not a pass.
        let baseline = hash_report(8000.0, 16000.0, false);
        let fresh = Parser::parse("{}").unwrap();
        let comparisons = compare_reports(&fresh, &baseline);
        assert_eq!(gate(&comparisons, 0.35).len(), 2);
    }

    #[test]
    fn hardware_limited_hash_rows_skip_instead_of_fail() {
        let baseline = hash_report(8000.0, 16000.0, false);
        let fresh = hash_report(99999.0, 99999.0, true);
        assert!(compare_reports(&fresh, &baseline)
            .iter()
            .all(|c| !c.name.starts_with("hash/")));
    }

    fn snapshot_report(load_ns: f64, load_s: f64, allocs: f64, limited: bool) -> Json {
        let text = format!(
            r#"{{
              "bench": "snapshot_cycle",
              "cycles": [
                {{"scale": 0.2, "structure": "query-engine", "dataset_points": 4000,
                  "threads": 1, "build_s": 0.5, "save_s": 0.01, "load_s": {load_s},
                  "load_ns": {load_ns}, "load_large_allocs": {allocs},
                  "snapshot_bytes": 1000000, "build_over_load": 10.0,
                  "hardware_limited": {limited}}}
              ]
            }}"#
        );
        Parser::parse(&text).expect("valid snapshot report")
    }

    #[test]
    fn snapshot_load_time_gates_as_a_rate() {
        let baseline = snapshot_report(50e6, 0.05, 1.0, false);
        let ok = snapshot_report(60e6, 0.06, 1.0, false); // -17% rate
        let ok_comparisons = compare_reports(&ok, &baseline);
        assert!(gate(&ok_comparisons, 0.35).is_empty());
        let slow = snapshot_report(100e6, 0.1, 1.0, false); // -50% rate
        let slow_comparisons = compare_reports(&slow, &baseline);
        let failures = gate(&slow_comparisons, 0.35);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].name, "snapshot-load/query-engine/scale-0.2/1t");
    }

    #[test]
    fn trivial_or_limited_snapshot_loads_do_not_gate_on_time() {
        // Sub-5-ms loads and hardware-limited rows: no time comparison...
        let baseline = snapshot_report(1e6, 0.001, 1.0, false);
        let fresh = snapshot_report(4e6, 0.004, 1.0, false);
        assert!(compare_reports(&fresh, &baseline)
            .iter()
            .all(|c| !c.name.starts_with("snapshot-load/")));
        let baseline = snapshot_report(50e6, 0.05, 1.0, false);
        let limited = snapshot_report(500e6, 0.5, 1.0, true);
        assert!(compare_reports(&limited, &baseline)
            .iter()
            .all(|c| !c.name.starts_with("snapshot-load/")));
        // ...but the allocation budget still applies to both.
        let bloated = snapshot_report(1e6, 0.001, 40.0, true);
        let base_small = snapshot_report(1e6, 0.001, 1.0, false);
        assert_eq!(check_snapshot_allocs(&bloated, &base_small).len(), 1);
    }

    #[test]
    fn large_alloc_budget_is_absolute() {
        let baseline = snapshot_report(50e6, 0.05, 1.0, false);
        // One or two extra buffers: an intentional change, within slack.
        let ok = snapshot_report(50e6, 0.05, 3.0, false);
        assert!(check_snapshot_allocs(&ok, &baseline).is_empty());
        // O(sections) or O(points) allocations: fails however fast it ran.
        let copies = snapshot_report(10e6, 0.01, 12.0, false);
        let failures = check_snapshot_allocs(&copies, &baseline);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("query-engine/scale-0.2/1t"));
    }

    fn churn_report(qps: f64, publish_ms: f64, limited: bool) -> Json {
        let text = format!(
            r#"{{"churn": {{"reader_threads": 2, "commits": 64, "qps": {qps},
                 "publish_ms": {publish_ms}, "hardware_limited": {limited}}}}}"#
        );
        Parser::parse(&text).expect("valid churn report")
    }

    #[test]
    fn churn_gates_qps_and_publish_latency_as_rates() {
        let baseline = churn_report(20_000.0, 1.0, false);
        // -15% q/s, +20% latency: both within the 35% budget.
        let ok = churn_report(17_000.0, 1.2, false);
        let comparisons = compare_reports(&ok, &baseline);
        assert_eq!(comparisons.len(), 2);
        assert!(gate(&comparisons, 0.35).is_empty());
        // Publish latency doubled: a 50% rate regression fails.
        let slow = churn_report(19_000.0, 2.0, false);
        let failures_owner = compare_reports(&slow, &baseline);
        let failures = gate(&failures_owner, 0.35);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].name, "churn/publish-rate");
    }

    #[test]
    fn hardware_limited_churn_rows_do_not_gate() {
        let baseline = churn_report(20_000.0, 1.0, false);
        // A 1-core PR runner marks the row limited; its numbers must not
        // gate no matter how bad they look.
        let fresh = churn_report(500.0, 50.0, true);
        assert!(compare_reports(&fresh, &baseline)
            .iter()
            .all(|c| !c.name.starts_with("churn/")));
        // And an old baseline without the row is simply not compared.
        let no_row = Parser::parse("{}").unwrap();
        assert!(compare_reports(&churn_report(1.0, 1.0, false), &no_row)
            .iter()
            .all(|c| !c.name.starts_with("churn/")));
    }

    fn server_report(qps: f64, p99_ns: f64, limited: bool) -> Json {
        let text = format!(
            r#"{{"server": {{"qps": {qps}, "p50_ns": 1000000, "p99_ns": {p99_ns},
                 "p999_ns": 16000000, "requests": 2000, "errors": 0,
                 "measured_s": 1.5, "hardware_limited": {limited}}}}}"#
        );
        Parser::parse(&text).expect("valid server report")
    }

    #[test]
    fn server_gates_qps_and_tail_latencies_as_rates() {
        let baseline = server_report(5_000.0, 4_000_000.0, false);
        // -15% q/s, +25% p99: both within the 35% budget.
        let ok = server_report(4_250.0, 5_000_000.0, false);
        let comparisons = compare_reports(&ok, &baseline);
        assert_eq!(comparisons.len(), 4, "qps + three tails");
        assert!(gate(&comparisons, 0.35).is_empty());
        // p99 doubled: a 50% rate regression fails on exactly that figure.
        let slow = server_report(5_000.0, 8_000_000.0, false);
        let slow_comparisons = compare_reports(&slow, &baseline);
        let failures = gate(&slow_comparisons, 0.35);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].name, "server/p99-rate");
    }

    #[test]
    fn hardware_limited_server_rows_do_not_gate() {
        let baseline = server_report(5_000.0, 4_000_000.0, false);
        // A 1-core PR runner marks the row limited; its numbers never gate.
        let fresh = server_report(100.0, 500_000_000.0, true);
        assert!(compare_reports(&fresh, &baseline)
            .iter()
            .all(|c| !c.name.starts_with("server/")));
        // A baseline predating the server row is simply not compared.
        let no_row = Parser::parse("{}").unwrap();
        assert!(compare_reports(&server_report(1.0, 1.0, false), &no_row)
            .iter()
            .all(|c| !c.name.starts_with("server/")));
    }

    fn obs_report(overhead_pct: f64, measured_s: f64) -> Json {
        let text = format!(
            r#"{{"obs_overhead": {{"uninstrumented_qps": 1000.0, "instrumented_qps": 980.0,
                 "overhead_pct": {overhead_pct}, "measured_s": {measured_s}}}}}"#
        );
        Parser::parse(&text).expect("valid obs report")
    }

    #[test]
    fn obs_overhead_within_budget_passes() {
        assert!(check_obs_overhead(&obs_report(2.0, 1.0)).is_ok());
        // Negative overhead (instrumented measured faster) is fine.
        assert!(check_obs_overhead(&obs_report(-1.5, 1.0)).is_ok());
    }

    #[test]
    fn obs_overhead_over_budget_fails() {
        assert!(check_obs_overhead(&obs_report(3.5, 1.0)).is_err());
    }

    #[test]
    fn obs_overhead_noise_and_absence_do_not_gate() {
        // Too short to measure: skipped, not failed.
        let skipped = check_obs_overhead(&obs_report(50.0, 0.01)).expect("skip");
        assert!(skipped.is_some_and(|s| s.contains("skipped")));
        // Reports without the row (build_scaling, older baselines): silent.
        assert_eq!(check_obs_overhead(&Parser::parse("{}").unwrap()), Ok(None));
    }

    #[test]
    fn obs_overhead_without_a_number_is_an_error() {
        let bad = Parser::parse(r#"{"obs_overhead": {"measured_s": 1.0}}"#).unwrap();
        assert!(check_obs_overhead(&bad).is_err());
    }

    #[test]
    fn faster_is_never_a_failure() {
        let baseline = report(100.0, 200.0, 50.0, false, 1000.0);
        let fresh = report(500.0, 900.0, 200.0, false, 9000.0);
        let comparisons = compare_reports(&fresh, &baseline);
        assert!(gate(&comparisons, 0.0).is_empty());
    }
}
