//! Umbrella crate for the fair near-neighbor search workspace.
//!
//! Re-exports every sub-crate of the reproduction of *Aumüller, Pagh,
//! Silvestri — "Fair Near Neighbor Search: Independent Range Sampling in High
//! Dimensions" (PODS 2020)* under one roof, so the runnable examples in
//! `examples/` (and downstream consumers that want everything) can depend on
//! a single crate:
//!
//! * [`core`] — the paper's fair samplers (r-NNS, r-NNIS, rank-swap, filter);
//! * [`engine`] — the sharded, concurrent, batch query-serving subsystem
//!   built on top of them;
//! * [`lsh`] — the locality-sensitive hashing substrate;
//! * [`space`] — point types, similarities, exact-neighbourhood datasets;
//! * [`data`] — synthetic workloads calibrated to the paper's evaluation;
//! * [`sketch`] — mergeable count-distinct sketches;
//! * [`snapshot`] — the versioned binary snapshot format behind every
//!   structure's `save(path)` / `load(path)`;
//! * [`stats`] — fairness/uniformity measurement machinery.
//!
//! See the crate-level docs of [`fairnn_core`] for the theorem-by-theorem map
//! of the paper, and the workspace `README.md` for build/run instructions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fairnn_core as core;
pub use fairnn_data as data;
pub use fairnn_engine as engine;
pub use fairnn_lsh as lsh;
pub use fairnn_sketch as sketch;
pub use fairnn_snapshot as snapshot;
pub use fairnn_space as space;
pub use fairnn_stats as stats;
