//! Connection-level fault injection against a live `fairnn-server`.
//!
//! Every scenario is a fixed script driven over loopback `TcpStream`s:
//! slowloris heads, mid-request disconnects, garbage bytes, half-close,
//! oversized payloads, admission saturation, rate limiting, deadline
//! expiry, a deliberately panicking handler, and the full graceful-drain
//! lifecycle. Each pins (a) the rejection status / close behavior and
//! (b) the property that actually matters: *the server keeps serving
//! afterwards*. Timeouts in the configs are generous multiples of the
//! poll slice, so the suite is deterministic on a loaded 1-core CI box.

use fairnn_core::SimilarityAtLeast;
use fairnn_engine::{BatchResponse, EngineWriter, QueryRequest, ShardedIndexConfig, WriteBatch};
use fairnn_integration_tests::{golden_dataset, golden_params};
use fairnn_lsh::{ConcatenatedHasher, MinHash, MinHasher};
use fairnn_server::{read_response, serve, ClientResponse, ServerConfig, ServerHandle};
use fairnn_snapshot::{Codec, Decoder, Encoder};
use fairnn_space::{Jaccard, PointId, SparseSet};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

type Hasher = ConcatenatedHasher<MinHasher>;
type Near = SimilarityAtLeast<Jaccard>;
type SetWriter = EngineWriter<SparseSet, Hasher, Near>;

const SEED: u64 = 17;
const SHARDS: usize = 2;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fairnn-server-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bootstrap(tag: &str) -> (SetWriter, PathBuf) {
    let data = golden_dataset();
    let dir = scratch_dir(tag);
    let writer = SetWriter::bootstrap(
        &MinHash,
        golden_params(data.len()),
        &data,
        SimilarityAtLeast::new(Jaccard, 0.5),
        ShardedIndexConfig::with_shards(SHARDS).seeded(SEED),
        &dir,
    )
    .expect("bootstrap");
    (writer, dir)
}

/// A config tuned for fast, deterministic fault tests: tight head
/// budget, roomy body budget (the saturation script holds a body open
/// on purpose), 5 ms poll slices.
fn fault_config() -> ServerConfig {
    ServerConfig::default()
        .with_io_timeouts_ms(400, 3_000, 2_000, 2_000)
        .with_poll_slice_ms(5)
        .with_drain_deadline_ms(5_000)
        .with_size_caps(512, 4 * 1024)
}

fn boot(tag: &str, config: ServerConfig) -> (ServerHandle, PathBuf) {
    let (writer, dir) = bootstrap(tag);
    let handle = serve(writer, config, ("127.0.0.1", 0)).expect("serve binds");
    (handle, dir)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client read timeout");
    stream
}

fn request_bytes(method: &str, path: &str, headers: &[(&str, String)], body: &[u8]) -> Vec<u8> {
    let mut out = format!("{method} {path} HTTP/1.1\r\nHost: t\r\n").into_bytes();
    for (name, value) in headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
    out.extend_from_slice(body);
    out
}

fn roundtrip(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, String)],
    body: &[u8],
) -> ClientResponse {
    let mut stream = connect(addr);
    stream
        .write_all(&request_bytes(method, path, headers, body))
        .expect("send request");
    read_response(&mut stream).expect("read response")
}

fn encode<T: Codec>(value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    enc.into_bytes()
}

fn sample_request(batch: u64) -> QueryRequest<SparseSet> {
    let data = golden_dataset();
    QueryRequest::new(vec![
        data.point(PointId(0)).clone(),
        data.point(PointId(1)).clone(),
    ])
    .with_batch(batch)
}

#[test]
fn serves_queries_commits_and_health_over_the_wire() {
    let (handle, dir) = boot("roundtrip", fault_config());
    let addr = handle.addr();

    // A twin engine bootstrapped from the same data and seed predicts
    // the served answers exactly: the deterministic serving contract,
    // now across a network hop.
    let (twin, twin_dir) = bootstrap("roundtrip-twin");
    let request = sample_request(3);
    let expected = twin.reader().pin().run_batch(&request);

    let got = roundtrip(addr, "POST", "/v1/query", &[], &encode(&request));
    assert_eq!(got.status, 200);
    let mut dec = Decoder::new(&got.body);
    let response = BatchResponse::decode(&mut dec).expect("decode response");
    assert_eq!(response, expected, "wire answers match the local twin");

    // Keep-alive: one connection, two exchanges, second is healthz.
    let mut stream = connect(addr);
    stream
        .write_all(&request_bytes("POST", "/v1/query", &[], &encode(&request)))
        .unwrap();
    let first = read_response(&mut stream).expect("first on keep-alive");
    assert_eq!(first.status, 200);
    assert_eq!(first.header("connection"), Some("keep-alive"));
    stream
        .write_all(&request_bytes("GET", "/healthz", &[], b""))
        .unwrap();
    let health = read_response(&mut stream).expect("second on keep-alive");
    assert_eq!(health.status, 200);
    let health_text = String::from_utf8(health.body.clone()).unwrap();
    assert!(health_text.contains("\"status\":\"ok\""), "{health_text}");
    assert!(health_text.contains("\"generation\":0"), "{health_text}");
    assert!(
        health_text.contains("\"generation_age_ms\":"),
        "{health_text}"
    );
    assert!(
        health_text.contains("\"active_connections\":"),
        "{health_text}"
    );
    drop(stream);

    // A commit over the wire publishes a new generation...
    let batch = WriteBatch::new().insert(golden_dataset().point(PointId(0)).clone());
    let receipt = roundtrip(addr, "POST", "/v1/commit", &[], &encode(&batch));
    assert_eq!(receipt.status, 200);
    let receipt_text = String::from_utf8(receipt.body).unwrap();
    assert!(receipt_text.contains("\"seq\":0"), "{receipt_text}");
    assert!(receipt_text.contains("\"generation\":1"), "{receipt_text}");
    assert!(receipt_text.contains("\"assigned\":["), "{receipt_text}");

    // ...observable in healthz and stamped on subsequent answers.
    let health = roundtrip(addr, "GET", "/healthz", &[], b"");
    assert!(String::from_utf8(health.body)
        .unwrap()
        .contains("\"generation\":1"));
    let got = roundtrip(addr, "POST", "/v1/query", &[], &encode(&request));
    let mut dec = Decoder::new(&got.body);
    assert_eq!(BatchResponse::decode(&mut dec).unwrap().generation, 1);

    // /metrics renders the server's own instrumentation.
    let metrics = roundtrip(addr, "GET", "/metrics", &[], b"");
    assert_eq!(metrics.status, 200);
    let metrics_text = String::from_utf8(metrics.body).unwrap();
    assert!(
        metrics_text.contains("server_requests_total"),
        "{metrics_text}"
    );
    assert!(
        metrics_text.contains("server_active_connections"),
        "{metrics_text}"
    );

    // Unknown routes and wrong methods are typed, not closures.
    assert_eq!(roundtrip(addr, "GET", "/nope", &[], b"").status, 404);
    assert_eq!(roundtrip(addr, "GET", "/v1/query", &[], b"").status, 405);
    // A commit deleting an id nobody has is a 409, not a 500.
    let bad = WriteBatch::<SparseSet>::new().delete(PointId(9999));
    assert_eq!(
        roundtrip(addr, "POST", "/v1/commit", &[], &encode(&bad)).status,
        409
    );

    let report = handle.join();
    assert!(report.completed_within_deadline);
    let _ = std::fs::remove_dir_all(dir);
    drop(twin);
    let _ = std::fs::remove_dir_all(twin_dir);
}

#[test]
fn garbage_bytes_get_400_and_the_server_survives() {
    let (handle, dir) = boot("garbage", fault_config());
    let addr = handle.addr();

    let mut stream = connect(addr);
    stream
        .write_all(b"\x00\xffTOTAL GARBAGE\x01\x02\r\n\r\n")
        .unwrap();
    let resp = read_response(&mut stream).expect("400 response");
    assert_eq!(resp.status, 400);
    assert_eq!(resp.header("connection"), Some("close"));
    // The server closed its end after the rejection.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap_or(0), 0);

    // Still serving.
    assert_eq!(roundtrip(addr, "GET", "/healthz", &[], b"").status, 200);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn slowloris_head_gets_408() {
    let (handle, dir) = boot("slowloris", fault_config());
    let addr = handle.addr();

    let mut stream = connect(addr);
    // Trickle a plausible head one fragment at a time, slower than the
    // 400 ms head budget allows in total.
    for fragment in [&b"GET /hea"[..], b"lthz HT", b"TP/1."] {
        stream.write_all(fragment).unwrap();
        std::thread::sleep(Duration::from_millis(200));
    }
    let resp = read_response(&mut stream).expect("408 response");
    assert_eq!(resp.status, 408);
    assert_eq!(resp.header("connection"), Some("close"));

    // The slot was released and the server keeps serving.
    assert_eq!(roundtrip(addr, "GET", "/healthz", &[], b"").status, 200);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn oversized_head_431_and_oversized_body_413() {
    let (handle, dir) = boot("oversized", fault_config());
    let addr = handle.addr();

    // Head past the 512-byte cap, no terminator: 431.
    let mut stream = connect(addr);
    stream.write_all(&vec![b'a'; 600]).unwrap();
    let resp = read_response(&mut stream).expect("431 response");
    assert_eq!(resp.status, 431);
    drop(stream);

    // Declared body past the cap: 413 before any body byte is read.
    let mut stream = connect(addr);
    stream
        .write_all(b"POST /v1/query HTTP/1.1\r\nContent-Length: 999999\r\n\r\n")
        .unwrap();
    let resp = read_response(&mut stream).expect("413 response");
    assert_eq!(resp.status, 413);
    assert_eq!(resp.header("connection"), Some("close"));

    assert_eq!(roundtrip(addr, "GET", "/healthz", &[], b"").status, 200);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn mid_request_disconnect_releases_the_slot() {
    let (handle, dir) = boot("disconnect", fault_config());
    let addr = handle.addr();

    // Half a head, then vanish.
    let mut stream = connect(addr);
    stream.write_all(b"POST /v1/query HTT").unwrap();
    drop(stream);
    // Half a body, then vanish.
    let mut stream = connect(addr);
    stream
        .write_all(b"POST /v1/query HTTP/1.1\r\nContent-Length: 64\r\n\r\nhalf")
        .unwrap();
    drop(stream);

    // Both slots come back and the server keeps serving.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while handle.active_connections() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(handle.active_connections(), 0, "permits released");
    assert_eq!(roundtrip(addr, "GET", "/healthz", &[], b"").status, 200);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn half_close_still_gets_a_response() {
    let (handle, dir) = boot("halfclose", fault_config());
    let addr = handle.addr();

    let mut stream = connect(addr);
    stream
        .write_all(&request_bytes("GET", "/healthz", &[], b""))
        .unwrap();
    stream.shutdown(Shutdown::Write).expect("half-close");
    let resp = read_response(&mut stream).expect("response after half-close");
    assert_eq!(resp.status, 200);

    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn saturated_admission_sheds_503_while_in_flight_completes() {
    // One worker, one admission slot: the second connection must be
    // shed at accept while the first finishes untouched.
    let (handle, dir) = boot(
        "saturation",
        fault_config().with_workers(1).with_max_connections(1),
    );
    let addr = handle.addr();

    // Connection A: complete head, body withheld — occupies the slot.
    let body = encode(&sample_request(1));
    let mut a = connect(addr);
    a.write_all(
        format!(
            "POST /v1/query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    // Give the accept loop ample time to admit A.
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(handle.active_connections(), 1);

    // Connection B: shed with 503 + Retry-After, served from the accept
    // thread without touching the busy worker.
    let mut b = connect(addr);
    b.write_all(&request_bytes("GET", "/healthz", &[], b""))
        .unwrap();
    let shed = read_response(&mut b).expect("503 response");
    assert_eq!(shed.status, 503);
    let retry_after: u64 = shed
        .header("retry-after")
        .expect("Retry-After present")
        .parse()
        .expect("Retry-After is seconds");
    assert!(retry_after >= 1);

    // A now completes and gets its full answer.
    a.write_all(&body).unwrap();
    let resp = read_response(&mut a).expect("A's response");
    assert_eq!(resp.status, 200);
    drop(a);

    // The slot frees up and the server admits again.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while handle.active_connections() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(roundtrip(addr, "GET", "/healthz", &[], b"").status, 200);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn per_client_rate_limit_sheds_429() {
    let (handle, dir) = boot("ratelimit", fault_config().with_rate_limit(1, 1));
    let addr = handle.addr();

    // Burst of 1: the first connection passes, the second (same IP,
    // immediately after) is rejected with 429 + Retry-After.
    assert_eq!(roundtrip(addr, "GET", "/healthz", &[], b"").status, 200);
    let mut second = connect(addr);
    second
        .write_all(&request_bytes("GET", "/healthz", &[], b""))
        .unwrap();
    let limited = read_response(&mut second).expect("429 response");
    assert_eq!(limited.status, 429);
    assert!(limited.header("retry-after").is_some());

    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn spent_deadline_budget_is_504() {
    let (handle, dir) = boot("deadline", fault_config());
    let addr = handle.addr();

    let body = encode(&sample_request(2));
    let resp = roundtrip(
        addr,
        "POST",
        "/v1/query",
        &[("x-deadline-ms", "0".to_string())],
        &body,
    );
    assert_eq!(resp.status, 504, "a zero budget expires before position 0");
    assert!(resp.header("retry-after").is_some());
    let text = String::from_utf8(resp.body).unwrap();
    assert!(
        text.contains("0 of 2"),
        "all-or-nothing: no partial answers ({text})"
    );

    // A sane budget on the same connection pattern succeeds.
    let resp = roundtrip(
        addr,
        "POST",
        "/v1/query",
        &[("x-deadline-ms", "30000".to_string())],
        &body,
    );
    assert_eq!(resp.status, 200);

    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn handler_panic_is_isolated_to_a_500() {
    let (handle, dir) = boot("panic", fault_config());
    let addr = handle.addr();

    let resp = roundtrip(addr, "POST", "/admin/panic", &[], b"");
    assert_eq!(resp.status, 500);
    assert_eq!(resp.header("connection"), Some("close"));

    // The worker survived; the process keeps serving on a fresh
    // connection and the isolation is visible in the metrics.
    assert_eq!(roundtrip(addr, "GET", "/healthz", &[], b"").status, 200);
    let metrics = roundtrip(addr, "GET", "/metrics", &[], b"");
    let text = String::from_utf8(metrics.body).unwrap();
    assert!(
        text.contains("server_handler_panics_total 1"),
        "panic counted once: {text}"
    );

    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn graceful_drain_finishes_in_flight_and_refuses_new_work() {
    let (handle, dir) = boot(
        "drain",
        fault_config().with_workers(2).with_max_connections(4),
    );
    let addr = handle.addr();

    // Connection A is mid-request (body withheld) when the drain starts.
    let body = encode(&sample_request(5));
    let mut a = connect(addr);
    a.write_all(
        format!(
            "POST /v1/query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // Drain over the wire: 202, and the draining state shows in the
    // response's Connection header (the drain connection itself closes).
    let mut d = connect(addr);
    d.write_all(&request_bytes("POST", "/admin/drain", &[], b""))
        .unwrap();
    let accepted = read_response(&mut d).expect("202 response");
    assert_eq!(accepted.status, 202);
    assert_eq!(accepted.header("connection"), Some("close"));
    assert!(handle.is_draining());
    drop(d);

    // A finishes its in-flight exchange with a full, valid response —
    // no lost answers — then is closed (draining forces close).
    a.write_all(&body).unwrap();
    let resp = read_response(&mut a).expect("in-flight completes during drain");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("connection"), Some("close"));
    let mut dec = Decoder::new(&resp.body);
    assert!(BatchResponse::decode(&mut dec).is_ok());
    drop(a);

    // join() reports a clean drain within the deadline.
    let report = handle.join();
    assert!(report.completed_within_deadline, "{report:?}");
    assert_eq!(report.forced_connections, 0);

    // The listener is gone: new connections are refused (or at best
    // accepted by a stale backlog entry and immediately closed).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut stream) => {
            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
            let _ = stream.write_all(&request_bytes("GET", "/healthz", &[], b""));
            assert!(
                read_response(&mut stream).is_err(),
                "a drained server must not answer"
            );
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}
