//! Seed-pinned golden tests: the frozen-CSR bucket layout and the batched
//! hash path must not change a single sampled id.
//!
//! The expected sequences (shared constants in `fairnn_integration_tests`)
//! were captured from the pre-freeze `HashMap<u64, Vec<PointId>>`
//! implementation (PR 2 state) with the exact builds and RNG streams used
//! here. Any change to hashing order, bucket order, or the samplers'
//! consumption of query randomness shows up as a mismatch — which is the
//! point: freezing the layout is a pure representation change and must be
//! bit-for-bit invisible to callers. `snapshot_roundtrip.rs` holds the
//! disk-roundtrip counterparts of these tests, pinned to the same
//! constants.

use fairnn_core::{FairNnis, FairNns, NeighborSampler, RankSwapSampler, SimilarityAtLeast};
use fairnn_engine::{EngineConfig, QueryEngine, ShardedIndex, ShardedIndexConfig};
use fairnn_integration_tests::{
    golden_dataset, golden_ids as ids, golden_params as params, GOLDEN_ENGINE_FIRST,
    GOLDEN_ENGINE_SECOND, GOLDEN_FAIR_NNIS, GOLDEN_FAIR_NNS, GOLDEN_RANK_SWAP, GOLDEN_SHARDED,
};
use fairnn_lsh::MinHash;
use fairnn_space::{Jaccard, PointId, SparseSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn fair_nns_golden() {
    let data = golden_dataset();
    let mut rng = StdRng::seed_from_u64(1);
    let near = SimilarityAtLeast::new(Jaccard, 0.5);
    let mut sampler = FairNns::build(&MinHash, params(data.len()), &data, near, &mut rng);
    let mut qrng = StdRng::seed_from_u64(5);
    // Cluster queries all share one neighborhood (one min-rank answer);
    // isolated queries return themselves — both shapes are pinned.
    let got: Vec<Option<PointId>> = [0u32, 3, 7, 10, 13, 16, 19, 22, 25, 28]
        .iter()
        .map(|&qi| sampler.sample(&data.point(PointId(qi)).clone(), &mut qrng))
        .collect();
    println!("fair_nns_golden: {:?}", ids(&got));
    assert_eq!(ids(&got), GOLDEN_FAIR_NNS);
}

#[test]
fn fair_nnis_golden() {
    let data = golden_dataset();
    let mut rng = StdRng::seed_from_u64(2);
    let near = SimilarityAtLeast::new(Jaccard, 0.5);
    let mut sampler = FairNnis::build(&MinHash, params(data.len()), &data, near, &mut rng);
    let query = data.point(PointId(0)).clone();
    let mut qrng = StdRng::seed_from_u64(99);
    let got: Vec<Option<PointId>> = (0..20).map(|_| sampler.sample(&query, &mut qrng)).collect();
    println!("fair_nnis_golden: {:?}", ids(&got));
    assert_eq!(ids(&got), GOLDEN_FAIR_NNIS);
}

#[test]
fn rank_swap_golden() {
    let data = golden_dataset();
    let mut rng = StdRng::seed_from_u64(3);
    let near = SimilarityAtLeast::new(Jaccard, 0.5);
    let mut sampler = RankSwapSampler::build(&MinHash, params(data.len()), &data, near, &mut rng);
    let query = data.point(PointId(4)).clone();
    let mut qrng = StdRng::seed_from_u64(7);
    let got: Vec<Option<PointId>> = (0..20).map(|_| sampler.sample(&query, &mut qrng)).collect();
    println!("rank_swap_golden: {:?}", ids(&got));
    assert_eq!(ids(&got), GOLDEN_RANK_SWAP);
}

#[test]
fn sharded_index_golden() {
    let data = golden_dataset();
    let near = SimilarityAtLeast::new(Jaccard, 0.5);
    let index = ShardedIndex::build(
        &MinHash,
        params(data.len()),
        &data,
        near,
        ShardedIndexConfig::with_shards(3).seeded(17),
    );
    let query = data.point(PointId(0)).clone();
    let mut qrng = StdRng::seed_from_u64(11);
    let got: Vec<Option<PointId>> = (0..20).map(|_| index.sample(&query, &mut qrng).0).collect();
    println!("sharded_index_golden: {:?}", ids(&got));
    assert_eq!(ids(&got), GOLDEN_SHARDED);
}

#[test]
fn engine_batch_golden() {
    let data = golden_dataset();
    let near = SimilarityAtLeast::new(Jaccard, 0.5);
    let mut engine = QueryEngine::build(
        &MinHash,
        params(data.len()),
        &data,
        near,
        EngineConfig::default().with_seed(23).with_shards(4),
    );
    // Two batches over the same queries: the second one rides the rank-swap
    // cache, so both the pipeline and the fast path are pinned.
    let batch: Vec<SparseSet> = (0..10u32).map(|i| data.point(PointId(i)).clone()).collect();
    let first: Vec<Option<PointId>> = engine.run_batch(&batch).iter().map(|a| a.id).collect();
    let second: Vec<Option<PointId>> = engine.run_batch(&batch).iter().map(|a| a.id).collect();
    println!("engine_batch_golden first: {:?}", ids(&first));
    println!("engine_batch_golden second: {:?}", ids(&second));
    assert_eq!(ids(&first), GOLDEN_ENGINE_FIRST);
    assert_eq!(ids(&second), GOLDEN_ENGINE_SECOND);
}
