//! Semantics of the sampling variants across crates: with/without
//! replacement (Section 3.1), correctness of the returned neighbourhoods,
//! and the cost-ratio quantities behind Figure 3.

use fairnn_core::{ExactSampler, FairNnis, FairNns, NeighborSampler, SimilarityAtLeast};
use fairnn_integration_tests::{test_dataset, test_params};
use fairnn_lsh::OneBitMinHash;
use fairnn_space::{Jaccard, PointId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

const R: f64 = 0.25;

#[test]
fn without_replacement_samples_are_distinct_near_neighbors() {
    let data = test_dataset(11);
    let params = test_params(data.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let mut rng = StdRng::seed_from_u64(1);
    let mut nns = FairNns::build(&OneBitMinHash, params, &data, near, &mut rng);
    let exact = ExactSampler::new(&data, near);

    let query = data.point(PointId(0)).clone();
    let neighborhood: HashSet<PointId> = exact.neighborhood(&query).into_iter().collect();
    for k in [1usize, 3, 8, neighborhood.len() + 5] {
        let sample = nns.sample_without_replacement(&query, k);
        assert!(sample.len() <= k);
        assert!(sample.len() <= neighborhood.len());
        let distinct: HashSet<PointId> = sample.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            sample.len(),
            "duplicates in a without-replacement sample"
        );
        for id in &sample {
            assert!(neighborhood.contains(id), "sampled a non-neighbour {id:?}");
        }
    }
}

#[test]
fn with_replacement_sampling_covers_the_neighborhood() {
    let data = test_dataset(12);
    let params = test_params(data.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let mut rng = StdRng::seed_from_u64(2);
    let mut nnis = FairNnis::build(&OneBitMinHash, params, &data, near, &mut rng);
    let exact = ExactSampler::new(&data, near);

    let query = data.point(PointId(1)).clone();
    let neighborhood: HashSet<PointId> = exact.neighborhood(&query).into_iter().collect();
    assert!(neighborhood.len() >= 5);

    let draws = nnis.sample_with_replacement(&query, 60 * neighborhood.len(), &mut rng);
    let seen: HashSet<PointId> = draws.iter().copied().collect();
    // With-replacement independent draws should quickly cover (almost) the
    // whole neighbourhood by the coupon-collector argument.
    assert!(
        seen.len() * 10 >= neighborhood.len() * 9,
        "covered {} of {} neighbours",
        seen.len(),
        neighborhood.len()
    );
    for id in &seen {
        assert!(neighborhood.contains(id));
    }
}

#[test]
fn every_sampler_agrees_on_empty_neighborhoods() {
    let data = test_dataset(13);
    let params = test_params(data.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let mut rng = StdRng::seed_from_u64(3);
    let mut nns = FairNns::build(&OneBitMinHash, params, &data, near, &mut rng);
    let mut nnis = FairNnis::build(&OneBitMinHash, params, &data, near, &mut rng);
    let mut exact = ExactSampler::new(&data, near);

    // A query with no items in common with anything.
    let query = fairnn_space::SparseSet::from_items(vec![999_900, 999_901, 999_902]);
    assert!(exact.sample(&query, &mut rng).is_none());
    assert!(nns.sample(&query, &mut rng).is_none());
    assert!(nnis.sample(&query, &mut rng).is_none());
    assert!(nns.sample_without_replacement(&query, 5).is_empty());
}

#[test]
fn cost_ratio_is_monotone_and_at_least_one() {
    // The Figure 3 quantity on the integration fixture: the ratio
    // b(q, cr)/b(q, r) is >= 1 and grows as c (and hence the far threshold)
    // shrinks.
    let data = test_dataset(14);
    let query = data.point(PointId(0)).clone();
    let b_r = data.similar_count(&Jaccard, &query, R) as f64;
    assert!(b_r >= 1.0);
    let mut previous = 1.0;
    for c in [0.9, 0.67, 0.5, 0.33, 0.2] {
        let b_cr = data.similar_count(&Jaccard, &query, c * R) as f64;
        let ratio = b_cr / b_r;
        assert!(ratio >= 1.0 - 1e-9);
        assert!(
            ratio >= previous - 1e-9,
            "ratio not monotone as c decreases"
        );
        previous = ratio;
    }
}
