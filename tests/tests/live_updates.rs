//! The generational live-update contract, end to end.
//!
//! Four guarantees are pinned here:
//!
//! 1. **Epoch isolation** — a reader pinned before a publish keeps
//!    serving its generation bit-for-bit, even while the writer publishes
//!    more generations and concurrent readers pin newer ones.
//! 2. **Serial equivalence** — the state after any sequence of committed
//!    batches is bit-identical to applying the same ops serially, however
//!    the ops are partitioned into batches (property test).
//! 3. **Crash durability** — killing the process mid-commit (simulated by
//!    truncating the WAL at every record boundary and mid-record) loses at
//!    most the torn record: recovery replays to the exact byte image of
//!    the last fully durable commit.
//! 4. **Thread-count independence** — bootstrap + commits produce the same
//!    bytes at 1, 2 and 8 build threads.
//!
//! "Bit-identical" is always asserted on the canonical snapshot encoding
//! (`to_bytes` of the staging index), which covers every table, sketch and
//! routing entry.

use fairnn_core::SimilarityAtLeast;
use fairnn_engine::{
    EngineWriter, QueryRequest, ShardedIndexConfig, WriteBatch, WriteOp, CHECKPOINT_FILE, WAL_FILE,
};
use fairnn_integration_tests::{golden_dataset, golden_params};
use fairnn_lsh::{ConcatenatedHasher, MinHash, MinHasher};
use fairnn_snapshot::{to_bytes, SnapshotKind, WAL_HEADER_LEN};
use fairnn_space::{Dataset, Jaccard, PointId, SparseSet};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Mutex;

type Hasher = ConcatenatedHasher<MinHasher>;
type Near = SimilarityAtLeast<Jaccard>;
type SetWriter = EngineWriter<SparseSet, Hasher, Near>;

fn near() -> Near {
    SimilarityAtLeast::new(Jaccard, 0.5)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fairnn-live-updates-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bootstrap(tag: &str, data: &Dataset<SparseSet>) -> (SetWriter, PathBuf) {
    let dir = scratch_dir(tag);
    let writer = SetWriter::bootstrap(
        &MinHash,
        golden_params(data.len()),
        data,
        near(),
        ShardedIndexConfig::with_shards(3).seeded(17),
        &dir,
    )
    .expect("bootstrap");
    (writer, dir)
}

/// A twin of dataset point 0 with one extra distinguishing item.
fn twin(extra: u32) -> SparseSet {
    let mut items: Vec<u32> = (0..25).collect();
    items.push(100);
    items.push(extra);
    SparseSet::from_items(items)
}

/// A deterministic little op script over the golden dataset: inserts,
/// deletes (of both original and freshly inserted points) and compactions.
fn op_script(data_len: usize) -> Vec<WriteOp<SparseSet>> {
    let mut ops = Vec::new();
    for j in 0..6u32 {
        ops.push(WriteOp::Insert(twin(500 + j)));
    }
    for id in 0..5u32 {
        ops.push(WriteOp::Delete(PointId(id)));
    }
    ops.push(WriteOp::Compact);
    ops.push(WriteOp::Delete(PointId::from_index(data_len + 2)));
    for j in 0..4u32 {
        ops.push(WriteOp::Insert(twin(600 + j)));
    }
    ops.push(WriteOp::Delete(PointId(7)));
    ops.push(WriteOp::Compact);
    ops
}

#[test]
fn pinned_readers_survive_concurrent_publishes_untouched() {
    // A serial twin first records the expected response of every
    // generation; the concurrent run then checks each observed response
    // against the expectation for its stamped generation number.
    let data = golden_dataset();
    let request = QueryRequest::new(vec![data.point(PointId(0)).clone(), twin(999)]);
    let batches: Vec<WriteBatch<SparseSet>> = (0..8u32)
        .map(|j| {
            if j % 3 == 2 {
                WriteBatch::new().delete(PointId(j / 3)).compact()
            } else {
                WriteBatch::new().insert(twin(700 + j))
            }
        })
        .collect();

    let (mut serial, serial_dir) = bootstrap("pin-serial", &data);
    let mut expected = vec![serial.reader().pin().run_batch(&request)];
    for batch in &batches {
        serial.commit(batch.clone()).expect("serial commit");
        expected.push(serial.reader().pin().run_batch(&request));
    }

    let (mut writer, dir) = bootstrap("pin-live", &data);
    let reader = writer.reader();
    // Pin generation 0 up front; it must stay bit-identical throughout.
    let old_pin = reader.pin();
    assert_eq!(old_pin.generation(), 0);

    let pool = fairnn_parallel::ThreadPool::new(4);
    let (tx, rx) = mpsc::channel();
    let stop = std::sync::Arc::new(Mutex::new(false));
    for _ in 0..4 {
        let reader = reader.clone();
        let request = request.clone();
        let tx = tx.clone();
        let stop = std::sync::Arc::clone(&stop);
        pool.execute(move || loop {
            let pin = reader.pin();
            let response = pin.run_batch(&request);
            let done = *stop.lock().unwrap();
            tx.send(response).expect("send");
            if done {
                break;
            }
        });
    }
    drop(tx);
    for batch in &batches {
        writer.commit(batch.clone()).expect("live commit");
    }
    *stop.lock().unwrap() = true;

    let mut observed = 0usize;
    for response in rx {
        let generation = response.generation as usize;
        assert!(generation < expected.len(), "unknown generation published");
        assert_eq!(
            response, expected[generation],
            "concurrent reader diverged from the serial twin at generation {generation}"
        );
        observed += 1;
    }
    assert!(observed >= 4, "readers produced no responses");
    drop(pool);

    // The pin taken before any commit still serves generation 0 exactly.
    let frozen_in_time = old_pin.run_batch(&request);
    assert_eq!(frozen_in_time, expected[0]);
    assert_eq!(writer.generation(), batches.len() as u64);

    let _ = std::fs::remove_dir_all(serial_dir);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn kill_during_commit_replays_to_the_last_durable_commit() {
    // Commit a batch sequence, remembering the staging image after every
    // commit. Then simulate a crash at every WAL cut: full prefixes must
    // recover the matching commit exactly; torn tails (any cut strictly
    // inside a record) must be dropped and recover the previous commit.
    let data = golden_dataset();
    let (mut writer, dir) = bootstrap("kill", &data);

    let ops = op_script(data.len());
    let mut images = vec![to_bytes(SnapshotKind::ShardedIndex, writer.staging())];
    let mut record_ends = vec![WAL_HEADER_LEN as u64];
    for op in ops {
        let mut batch = WriteBatch::new();
        batch.push(op);
        writer.commit(batch).expect("commit");
        images.push(to_bytes(SnapshotKind::ShardedIndex, writer.staging()));
        record_ends.push(writer.wal_bytes());
    }
    let wal = std::fs::read(dir.join(WAL_FILE)).expect("read wal");
    assert_eq!(wal.len() as u64, *record_ends.last().unwrap());

    let crash_dir = scratch_dir("kill-crash");
    std::fs::create_dir_all(&crash_dir).expect("mkdir");
    std::fs::copy(dir.join(CHECKPOINT_FILE), crash_dir.join(CHECKPOINT_FILE))
        .expect("copy checkpoint");
    for (k, window) in record_ends.windows(2).enumerate() {
        let (prev_end, end) = (window[0] as usize, window[1] as usize);
        // Cut exactly at the record boundary (commit k+1 fully durable),
        // and at three interior positions (commit k+1 torn → dropped).
        let interior = [
            prev_end + 1,  // torn header
            prev_end + 13, // header complete, payload torn
            end - 1,       // one byte short of durable
        ];
        for (cut, expect_k) in
            std::iter::once((end, k + 1)).chain(interior.into_iter().map(|c| (c, k)))
        {
            std::fs::write(crash_dir.join(WAL_FILE), &wal[..cut]).expect("write torn wal");
            let recovered = SetWriter::open(&crash_dir).expect("recovery must not fail");
            assert_eq!(
                to_bytes(SnapshotKind::ShardedIndex, recovered.staging()),
                images[expect_k],
                "cut at byte {cut}: recovery does not match commit {expect_k}"
            );
            assert_eq!(recovered.next_seq(), expect_k as u64);
            // The recovered WAL length excludes the torn tail.
            assert_eq!(recovered.wal_bytes(), record_ends[expect_k]);
        }
    }

    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(crash_dir);
}

#[test]
fn commits_are_identical_at_1_2_8_thread_counts() {
    // The full writer lifecycle — bootstrap, commits, checkpoint, reopen —
    // must produce the same bytes at every build-worker count.
    let data = golden_dataset();
    static KNOB: Mutex<()> = Mutex::new(());
    let _guard = KNOB.lock().unwrap();
    let mut images = Vec::new();
    for (round, threads) in [1usize, 2, 8].into_iter().enumerate() {
        fairnn_parallel::set_build_threads(threads);
        let (mut writer, dir) = bootstrap(&format!("threads-{round}"), &data);
        for op in op_script(data.len()) {
            let mut batch = WriteBatch::new();
            batch.push(op);
            writer.commit(batch).expect("commit");
        }
        writer.checkpoint().expect("checkpoint");
        let reopened = SetWriter::open(&dir).expect("open");
        images.push((
            to_bytes(SnapshotKind::ShardedIndex, writer.staging()),
            std::fs::read(dir.join(CHECKPOINT_FILE)).expect("read checkpoint"),
            to_bytes(SnapshotKind::ShardedIndex, reopened.staging()),
        ));
        let _ = std::fs::remove_dir_all(dir);
    }
    fairnn_parallel::set_build_threads(0);
    assert_eq!(images[0], images[1], "2 threads diverged from 1");
    assert_eq!(images[0], images[2], "8 threads diverged from 1");
    assert_eq!(
        images[0].0, images[0].2,
        "checkpoint recovery diverged from the live writer"
    );
}

/// Random op sequences: inserts of random sets, deletes of random earlier
/// ids (original or inserted), occasional compactions.
fn arb_ops() -> impl Strategy<Value = Vec<u8>> {
    // Encoded as bytes to keep shrinking simple: 0..=5 insert variants,
    // 6..=8 delete slots, 9 compact.
    proptest::collection::vec(0u8..10, 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_batch_partition_matches_serial_application(
        encoded in arb_ops(),
        split_mask in proptest::collection::vec(0u8..2, 24),
        case in 0u32..u32::MAX,
    ) {
        // Decode the script against a live id universe, so deletes always
        // reference ids that exist at that point in the sequence.
        let data = golden_dataset();
        let make_ops = |_: ()| -> Vec<WriteOp<SparseSet>> {
            let mut live: Vec<PointId> = (0..data.len()).map(PointId::from_index).collect();
            let mut next = data.len();
            let mut ops = Vec::new();
            for (i, &b) in encoded.iter().enumerate() {
                match b {
                    0..=5 => {
                        ops.push(WriteOp::Insert(twin(800 + (b as u32) * 31 + i as u32)));
                        live.push(PointId::from_index(next));
                        next += 1;
                    }
                    6..=8 if !live.is_empty() => {
                        let pick = (b as usize * 7 + i) % live.len();
                        ops.push(WriteOp::Delete(live.swap_remove(pick)));
                    }
                    _ => ops.push(WriteOp::Compact),
                }
            }
            ops
        };
        let ops = make_ops(());

        // Serial writer: one op per commit.
        let (mut serial, serial_dir) = bootstrap(&format!("prop-serial-{case}"), &data);
        for op in ops.clone() {
            let mut batch = WriteBatch::new();
            batch.push(op);
            serial.commit(batch).expect("serial commit");
        }

        // Partitioned writer: the same ops grouped into random batches.
        let (mut grouped, grouped_dir) = bootstrap(&format!("prop-grouped-{case}"), &data);
        let mut batch = WriteBatch::new();
        for (i, op) in ops.into_iter().enumerate() {
            batch.push(op);
            if split_mask.get(i).copied().unwrap_or(0) != 0 && !batch.is_empty() {
                let full = std::mem::replace(&mut batch, WriteBatch::new());
                grouped.commit(full).expect("grouped commit");
            }
        }
        if !batch.is_empty() {
            grouped.commit(batch).expect("grouped tail commit");
        }

        prop_assert_eq!(
            to_bytes(SnapshotKind::ShardedIndex, serial.staging()),
            to_bytes(SnapshotKind::ShardedIndex, grouped.staging()),
            "batch partitioning changed the resulting structure"
        );
        let _ = std::fs::remove_dir_all(serial_dir);
        let _ = std::fs::remove_dir_all(grouped_dir);
    }
}
