//! Cross-crate pipeline for the Section 5 filter structures: planted
//! inner-product workload → tensor filter / α-NNIS sampler → fairness
//! statistics.

use fairnn_core::{FilterConfig, FilterNnis, NeighborSampler, TensorFilter};
use fairnn_data::{PlantedInstance, PlantedInstanceConfig};
use fairnn_space::PointId;
use fairnn_stats::{FrequencyHistogram, UniformityReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn planted() -> PlantedInstance {
    PlantedInstance::generate(
        PlantedInstanceConfig {
            dim: 32,
            background: 500,
            near: 8,
            mid: 60,
            alpha: 0.8,
            beta: 0.5,
        },
        2024,
    )
}

fn config() -> FilterConfig {
    FilterConfig::new(0.8, 0.5)
        .with_epsilon(0.02)
        .with_repetitions(14)
}

#[test]
fn tensor_filter_solves_alpha_beta_nn_with_good_probability() {
    let inst = planted();
    let mut rng = StdRng::seed_from_u64(1);
    let mut successes = 0usize;
    let builds = 10;
    for _ in 0..builds {
        let filter = TensorFilter::build(config(), &inst.dataset, &mut rng);
        if let Some(id) = filter.solve_ann(&inst.dataset, &inst.query) {
            assert!(
                inst.dataset.point(id).dot(&inst.query) >= 0.5,
                "ANN answer below the beta threshold"
            );
            successes += 1;
        }
    }
    assert!(
        successes >= builds * 7 / 10,
        "ANN query succeeded only {successes}/{builds} times"
    );
}

#[test]
fn filter_nnis_is_uniform_over_its_candidate_support() {
    let inst = planted();
    let mut rng = StdRng::seed_from_u64(2);
    let mut sampler = FilterNnis::build(config(), &inst.dataset, &mut rng);

    let support: Vec<PointId> = sampler.near_candidates(&inst.query);
    assert!(
        support.len() >= 6,
        "candidate support too small ({}) to test uniformity",
        support.len()
    );

    let mut hist = FrequencyHistogram::new();
    for _ in 0..5000 {
        hist.record(sampler.sample(&inst.query, &mut rng));
    }
    // Restrict to successful answers: the failure event is rare but allowed.
    assert!(hist.none_count() * 10 < hist.total(), "too many ⊥ answers");
    let report = UniformityReport::from_histogram(&hist, &support);
    assert!(
        report.out_of_support < 0.02,
        "samples outside the near candidate set: {}",
        report.out_of_support
    );
    assert!(
        report.total_variation < 0.15,
        "total variation {} too high for a fair sampler",
        report.total_variation
    );
}

#[test]
fn filter_nnis_space_is_linear_in_points_times_repetitions() {
    let inst = planted();
    let mut rng = StdRng::seed_from_u64(3);
    let sampler = FilterNnis::build(config(), &inst.dataset, &mut rng);
    assert_eq!(
        sampler.total_entries(),
        inst.dataset.len() * sampler.num_repetitions()
    );
    // Theorem 4's "nearly linear": the number of repetitions is logarithmic,
    // not polynomial, in n.
    assert!(sampler.num_repetitions() <= 2 * (inst.dataset.len() as f64).log2().ceil() as usize);
}
