//! Integration tests of the `fairnn-engine` serving subsystem: the sharded
//! two-level sampler against the same uniformity battery the unsharded
//! samplers face, the thread-count determinism contract, and the serving
//! lifecycle (batching, cache, incremental updates) on the shared workload
//! fixtures.

use fairnn_core::{ExactSampler, NeighborSampler, SimilarityAtLeast};
use fairnn_engine::{
    EngineConfig, EngineWriter, QueryEngine, QueryRequest, ShardedIndex, ShardedIndexConfig,
    ShardedSampler, WriteBatch,
};
use fairnn_integration_tests::{test_dataset, test_params};
use fairnn_lsh::OneBitMinHash;
use fairnn_space::{Jaccard, PointId, SparseSet};
use fairnn_stats::{FrequencyHistogram, UniformityReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

const R: f64 = 0.3;

fn build_index(
    shards: usize,
    seed: u64,
) -> (
    fairnn_space::Dataset<SparseSet>,
    ShardedIndex<
        SparseSet,
        fairnn_lsh::ConcatenatedHasher<fairnn_lsh::OneBitMinHasher>,
        SimilarityAtLeast<Jaccard>,
    >,
) {
    let dataset = test_dataset(1);
    let params = test_params(dataset.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let index = ShardedIndex::build(
        &OneBitMinHash,
        params,
        &dataset,
        near,
        ShardedIndexConfig::with_shards(shards).seeded(seed),
    );
    (dataset, index)
}

/// Queries with a non-trivial neighbourhood on the fixture dataset.
fn interesting_queries(dataset: &fairnn_space::Dataset<SparseSet>) -> Vec<PointId> {
    dataset
        .ids()
        .filter(|id| dataset.similar_count(&Jaccard, dataset.point(*id), R) >= 6)
        .take(4)
        .collect()
}

#[test]
fn sharded_sampler_passes_the_uniformity_battery() {
    // The acceptance bar of the sharded engine: with 4 shards, the output
    // distribution over B_S(q, r) must be statistically indistinguishable
    // from uniform — the same battery (chi-square consistency + total
    // variation) the unsharded fair samplers pass, on the same workload.
    let (dataset, index) = build_index(4, 21);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let exact = ExactSampler::new(&dataset, near);
    let queries = interesting_queries(&dataset);
    assert!(!queries.is_empty(), "fixture has no interesting queries");

    let mut rng = StdRng::seed_from_u64(99);
    for &qid in &queries {
        let query = dataset.point(qid).clone();
        let support = exact.neighborhood(&query);
        let trials = 1500 * support.len();
        let mut prepared = index.prepare(&query);
        let mut hist = FrequencyHistogram::new();
        for _ in 0..trials {
            hist.record(prepared.sample(&mut rng));
        }
        let report = UniformityReport::from_histogram(&hist, &support);
        assert_eq!(
            report.out_of_support, 0.0,
            "query {qid}: sampler left the neighbourhood"
        );
        assert!(
            report.is_consistent_with_uniform(0.001),
            "query {qid}: chi2 = {}, p = {}, TV = {}",
            report.chi_square,
            report.chi_square_p_value(),
            report.total_variation
        );
    }
}

#[test]
fn sharded_tv_matches_the_unsharded_fair_sampler() {
    // Head-to-head on the same queries and sample counts: the 4-shard
    // two-level sampler must be as close to uniform as an unsharded fair
    // sampler drawing the same number of samples (both TVs are sampling
    // noise; allow a small gap).
    let (dataset, index) = build_index(4, 22);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let exact = ExactSampler::new(&dataset, near);
    let params = test_params(dataset.len(), R);
    let mut build_rng = StdRng::seed_from_u64(7);
    let mut fair =
        fairnn_core::NaiveFairLsh::build(&OneBitMinHash, params, &dataset, near, &mut build_rng);

    let mut rng = StdRng::seed_from_u64(123);
    for qid in interesting_queries(&dataset).into_iter().take(2) {
        let query = dataset.point(qid).clone();
        let support = exact.neighborhood(&query);
        let trials = 300 * support.len();
        let mut prepared = index.prepare(&query);
        let (mut sharded_hist, mut fair_hist) =
            (FrequencyHistogram::new(), FrequencyHistogram::new());
        for _ in 0..trials {
            sharded_hist.record(prepared.sample(&mut rng));
            fair_hist.record(fair.sample(&query, &mut rng));
        }
        let sharded_tv = UniformityReport::from_histogram(&sharded_hist, &support).total_variation;
        let fair_tv = UniformityReport::from_histogram(&fair_hist, &support).total_variation;
        assert!(
            (sharded_tv - fair_tv).abs() < 0.05,
            "query {qid}: sharded TV {sharded_tv} vs fair TV {fair_tv}"
        );
    }
}

#[test]
fn sharded_neighborhood_preserves_recall() {
    // Sharding must not lose recall: the union of per-shard colliding near
    // points is a subset of the exact neighbourhood (no false positives by
    // construction) and misses at most the 1% the 99%-recall parameters
    // allow, for several shard counts including 1.
    let dataset = test_dataset(1);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let exact = ExactSampler::new(&dataset, near);
    for shards in [1usize, 2, 4, 7] {
        let (_, index) = build_index(shards, 30 + shards as u64);
        for &qid in &interesting_queries(&dataset) {
            let query = dataset.point(qid).clone();
            let truth = exact.neighborhood(&query);
            let got = index.neighborhood(&query);
            assert!(
                got.iter().all(|id| truth.contains(id)),
                "shards = {shards}, query {qid}: non-neighbour reported"
            );
            assert!(
                got.len() as f64 >= 0.9 * truth.len() as f64,
                "shards = {shards}, query {qid}: recall {}/{}",
                got.len(),
                truth.len()
            );
        }
    }
}

#[test]
fn eight_thread_run_reproduces_one_thread_run_bit_for_bit() {
    // The determinism regression test: same root seed, same batches, 1 vs 8
    // worker threads — every answer (id, stats, cache flag) must match.
    let dataset = test_dataset(1);
    let params = test_params(dataset.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let config = EngineConfig::default().with_shards(4).with_seed(77);
    let mut one = QueryEngine::build(&OneBitMinHash, params, &dataset, near, config);
    let mut eight = QueryEngine::build(
        &OneBitMinHash,
        params,
        &dataset,
        near,
        config.with_threads(8),
    );

    // Batches with distinct queries, duplicates, and repeats across batches
    // (so pipeline, fast path and cache-generation logic are all covered).
    let queries = interesting_queries(&dataset);
    for round in 0..3u32 {
        let mut batch = Vec::new();
        for (i, &qid) in queries.iter().enumerate() {
            let point = dataset.point(qid).clone();
            batch.push(point.clone());
            if i as u32 % 2 == round % 2 {
                batch.push(point);
            }
        }
        batch.push(SparseSet::from_items(vec![900_000, 900_001])); // ⊥ query
        let a = one.run_batch(&batch);
        let b = eight.run_batch(&batch);
        assert_eq!(a, b, "round {round}: thread count changed the answers");
        assert!(a.last().unwrap().id.is_none(), "⊥ query must answer None");
    }
    assert_eq!(one.cache_stats(), eight.cache_stats());
}

#[test]
fn serving_lifecycle_batch_cache_insert_delete() {
    let dataset = test_dataset(1);
    let params = test_params(dataset.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let mut engine = QueryEngine::build(
        &OneBitMinHash,
        params,
        &dataset,
        near,
        EngineConfig::default()
            .with_shards(3)
            .with_seed(5)
            .with_threads(2),
    );
    let exact = ExactSampler::new(&dataset, near);
    let qid = interesting_queries(&dataset)[0];
    let query = dataset.point(qid).clone();
    let support = exact.neighborhood(&query);

    // Batch answers stay in the neighbourhood; repeats ride the cache.
    let batch = vec![query.clone(); 30];
    let first = engine.run_batch(&batch);
    assert!(support.contains(&first[0].id.unwrap()));
    assert!(first.iter().skip(1).all(|a| a.via_cache));
    let again = engine.run_batch(&batch);
    assert!(again.iter().all(|a| a.via_cache));
    for a in &again {
        assert!(support.contains(&a.id.unwrap()));
    }

    // Live updates go through the generational writer: insert a twin of
    // the query and make sure a fresh pin serves it.
    let dir = std::env::temp_dir().join(format!("fairnn-serving-lifecycle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut writer = EngineWriter::bootstrap(
        &OneBitMinHash,
        test_params(dataset.len(), R),
        &dataset,
        near,
        ShardedIndexConfig::with_shards(3).seeded(5),
        &dir,
    )
    .expect("bootstrap");
    let reader = writer.reader();
    let receipt = writer
        .commit(WriteBatch::new().insert(query.clone()))
        .expect("insert commit");
    let id = receipt.assigned[0];
    let pin = reader.pin();
    assert_eq!(pin.index().len(), dataset.len() + 1);
    let mut found = false;
    for b in 0..60u64 {
        let request = QueryRequest::new(batch.clone()).with_batch(b);
        if pin
            .run_batch(&request)
            .answers
            .iter()
            .any(|a| a.id == Some(id))
        {
            found = true;
            break;
        }
    }
    assert!(found, "inserted twin never served");

    // Delete it again; it must disappear from fresh pins' answers.
    writer
        .commit(WriteBatch::new().delete(id))
        .expect("delete commit");
    let pin = reader.pin();
    let after = pin.run_batch(&QueryRequest::new(batch.clone()));
    assert!(after.answers.iter().all(|a| a.id != Some(id)));
    assert_eq!(pin.index().len(), dataset.len());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn sharded_sampler_slots_into_the_sampler_harness() {
    // The adapter must behave like any other NeighborSampler: k samples
    // with replacement, stats, name.
    let dataset = test_dataset(1);
    let params = test_params(dataset.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let mut sampler = ShardedSampler::build(
        &OneBitMinHash,
        params,
        &dataset,
        near,
        ShardedIndexConfig::with_shards(4).seeded(55),
    );
    let qid = interesting_queries(&dataset)[0];
    let query = dataset.point(qid).clone();
    let mut rng = StdRng::seed_from_u64(3);
    let samples = sampler.sample_with_replacement(&query, 20, &mut rng);
    assert_eq!(samples.len(), 20);
    let exact = ExactSampler::new(&dataset, near);
    let support = exact.neighborhood(&query);
    for id in samples {
        assert!(support.contains(&id));
    }
    assert_eq!(sampler.name(), "sharded-engine");
    assert!(sampler.last_query_stats().buckets_inspected > 0);
}
