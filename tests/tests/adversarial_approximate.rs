//! The Section 6.2 / Figure 2 finding as an integration test: on the
//! adversarial instance, the *approximate neighbourhood* sampler treats the
//! isolated set `X` far better than the clustered set `Y`, although `Y` is
//! more similar to the query — while the exact-neighbourhood fair samplers
//! return the single true near neighbour `Z` every time.

use fairnn_core::{ApproximateNeighborhoodSampler, FairNnis, NeighborSampler, SimilarityAtLeast};
use fairnn_data::AdversarialInstance;
use fairnn_lsh::{OneBitMinHash, ParamsBuilder};
use fairnn_space::Jaccard;
use fairnn_stats::FrequencyHistogram;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn approximate_neighborhood_sampling_is_unfair_on_the_adversarial_instance() {
    let instance = AdversarialInstance::build();
    let params = ParamsBuilder::new(
        instance.dataset.len(),
        instance.near_threshold,
        instance.far_threshold,
    )
    .empirical(&OneBitMinHash);
    let within_far = SimilarityAtLeast::new(Jaccard, instance.far_threshold);

    // Aggregate over several independent builds, as the Figure 2 error bars do.
    let mut x_count = 0u64;
    let mut y_count = 0u64;
    let mut z_count = 0u64;
    let mut total = 0u64;
    // The unfairness shows up over the construction randomness (whether X /
    // the Y-cluster collide with the query at all is decided per build), so
    // aggregate over many independent builds with a modest number of
    // repetitions each.
    for build in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(100 + build);
        let mut sampler = ApproximateNeighborhoodSampler::build(
            &OneBitMinHash,
            params,
            &instance.dataset,
            within_far,
            &mut rng,
        );
        let mut hist = FrequencyHistogram::new();
        for _ in 0..200 {
            hist.record(sampler.sample(&instance.query, &mut rng));
        }
        x_count += hist.count(instance.x);
        y_count += hist.count(instance.y);
        z_count += hist.count(instance.z);
        total += hist.total();
    }

    assert!(total > 0);
    // The crowded point Y must be sampled clearly less often than the
    // isolated point X at lower similarity — the paper reports a factor
    // above 50; at our scaled repetition count we require at least 3x and
    // allow Y to be missed entirely.
    assert!(
        x_count > 3 * y_count.max(1),
        "X sampled {x_count} times, Y sampled {y_count} times — unfairness not reproduced"
    );
    // Z (the true near neighbour) is also reachable.
    assert!(z_count > 0, "the true near neighbour Z was never sampled");
}

#[test]
fn exact_neighborhood_samplers_always_return_the_true_near_neighbor() {
    let instance = AdversarialInstance::build();
    let params = ParamsBuilder::new(
        instance.dataset.len(),
        instance.near_threshold,
        instance.far_threshold,
    )
    .empirical(&OneBitMinHash);
    // The exact-neighbourhood notion: only points with similarity >= r = 0.9
    // qualify, and Z is the only such point.
    let near = SimilarityAtLeast::new(Jaccard, instance.near_threshold);
    let mut rng = StdRng::seed_from_u64(7);
    let mut sampler = FairNnis::build(&OneBitMinHash, params, &instance.dataset, near, &mut rng);
    for _ in 0..50 {
        let got = sampler.sample(&instance.query, &mut rng);
        assert_eq!(got, Some(instance.z), "exact fair sampler must return Z");
    }
}
