//! Smoke tests for the figure pipeline: every experiment binary in
//! `crates/bench/src/bin/` must run end-to-end at a tiny `--scale`, so the
//! reproduction of the paper's evaluation can never silently rot.
//!
//! Each test shells out through `cargo run` (using the same cargo that is
//! driving this test run), which reuses the build cache; the binaries are
//! exercised with a deliberately small workload so the whole smoke suite
//! stays in the seconds range.

use std::process::Command;

fn run_experiment(name: &str, extra: &[&str]) -> String {
    let mut args = vec![
        "run",
        "--quiet",
        "-p",
        "fairnn-bench",
        "--bin",
        name,
        "--",
        "--scale",
        "0.05",
        "--repetitions",
        "40",
        "--queries",
        "2",
        "--seed",
        "7",
    ];
    args.extend_from_slice(extra);
    let output = Command::new(env!("CARGO"))
        .args(&args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn `cargo run --bin {name}`: {e}"));
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    assert!(
        output.status.success(),
        "{name} exited with {:?}\n--- stdout ---\n{stdout}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !stdout.trim().is_empty(),
        "{name} produced no output on stdout"
    );
    stdout
}

#[test]
fn fig1_fairness_runs_at_tiny_scale() {
    let out = run_experiment("fig1_fairness", &[]);
    assert!(
        out.contains("Figure 1"),
        "unexpected fig1_fairness output:\n{out}"
    );
}

#[test]
fn fig2_approximate_runs_at_tiny_scale() {
    let out = run_experiment("fig2_approximate", &[]);
    assert!(
        out.contains("Figure 2"),
        "unexpected fig2_approximate output:\n{out}"
    );
}

#[test]
fn fig3_cost_ratio_runs_at_tiny_scale() {
    let out = run_experiment("fig3_cost_ratio", &[]);
    assert!(
        out.contains("Figure 3"),
        "unexpected fig3_cost_ratio output:\n{out}"
    );
}

#[test]
fn table_query_cost_runs_at_tiny_scale() {
    let out = run_experiment("table_query_cost", &[]);
    assert!(
        out.contains("cost"),
        "unexpected table_query_cost output:\n{out}"
    );
}

#[test]
fn fig1_fairness_reports_the_sharded_engine_when_sharded() {
    let out = run_experiment("fig1_fairness", &["--shards", "3", "--threads", "2"]);
    assert!(
        out.contains("sharded engine (3 shards)"),
        "missing engine battery table:\n{out}"
    );
    assert!(
        out.contains("mean TV sharded"),
        "missing engine summary:\n{out}"
    );
}

#[test]
fn engine_throughput_runs_at_tiny_scale() {
    let out = run_experiment("engine_throughput", &["--threads", "2", "--shards", "3"]);
    assert!(
        out.contains("determinism check"),
        "unexpected engine_throughput output:\n{out}"
    );
    assert!(
        out.contains("rank-swap fast path"),
        "unexpected engine_throughput output:\n{out}"
    );
}
