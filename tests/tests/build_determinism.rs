//! Parallel build ≡ serial build, bit for bit.
//!
//! The build path — LSH hashing, per-table CSR freezes, rank-table sorts,
//! bucket sketches, shard construction and snapshot encode/decode — runs on
//! the `fairnn-parallel` build workers. The contract is the one the engine's
//! `run_batch` established for queries: **output is a pure function of the
//! inputs, identical at every thread count**. This suite pins it end to end:
//!
//! * the canonical snapshot image (`to_bytes`) of every structure built at
//!   1, 2 and 8 build threads is byte-identical — which covers bucket
//!   *contents and order*, since the encoding is canonical and order-
//!   preserving;
//! * query/sample sequences drawn with identical RNG streams agree;
//! * property test: random datasets, same guarantee for the bare index.
//!
//! The thread knob is process-global, so the sweeping tests serialize on a
//! lock — not for correctness (any interleaving still passes, that is the
//! point of determinism) but so each sweep genuinely exercises the thread
//! counts it names.

use fairnn_core::{FairNnis, NeighborSampler, SimilarityAtLeast};
use fairnn_engine::{
    EngineConfig, EngineWriter, QueryEngine, ShardedIndex, ShardedIndexConfig, WriteBatch,
};
use fairnn_integration_tests::{golden_dataset, golden_params as params};
use fairnn_lsh::{ConcatenatedHasher, LshIndex, MinHash, MinHasher};
use fairnn_snapshot::{from_bytes, to_bytes, SnapshotKind};
use fairnn_space::{Dataset, Jaccard, PointId, SparseSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

type Hasher = ConcatenatedHasher<MinHasher>;
type Near = SimilarityAtLeast<Jaccard>;
type SetNnis = FairNnis<SparseSet, Hasher, Near>;
type SetSharded = ShardedIndex<SparseSet, Hasher, Near>;
type SetEngine = QueryEngine<SparseSet, Hasher, Near>;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

static KNOB: Mutex<()> = Mutex::new(());

/// Runs `build` once per thread count and returns the results in order
/// (1, 2, 8), restoring the auto setting afterwards.
fn sweep<T>(mut build: impl FnMut() -> T) -> Vec<T> {
    let _guard = KNOB.lock().unwrap();
    let out = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            fairnn_parallel::set_build_threads(threads);
            build()
        })
        .collect();
    fairnn_parallel::set_build_threads(0);
    out
}

fn near() -> Near {
    SimilarityAtLeast::new(Jaccard, 0.5)
}

#[test]
fn lsh_index_builds_identically_at_every_thread_count() {
    let data = golden_dataset();
    let indexes = sweep(|| {
        let mut rng = StdRng::seed_from_u64(41);
        LshIndex::build(&MinHash, params(data.len()), data.points(), &mut rng)
    });
    let Ok([serial, two, eight]) = <[_; 3]>::try_from(indexes) else {
        panic!("three builds expected");
    };
    let reference = to_bytes(SnapshotKind::LshIndex, &serial);
    assert_eq!(to_bytes(SnapshotKind::LshIndex, &two), reference);
    assert_eq!(to_bytes(SnapshotKind::LshIndex, &eight), reference);
    // Spot-check the contract behind the byte equality: bucket contents AND
    // per-bucket order, table by table.
    for (a, b) in serial.tables().iter().zip(eight.tables()) {
        let left: Vec<(u64, Vec<PointId>)> = a.buckets().map(|(k, v)| (k, v.to_vec())).collect();
        let right: Vec<(u64, Vec<PointId>)> = b.buckets().map(|(k, v)| (k, v.to_vec())).collect();
        assert_eq!(left, right);
    }
    for qi in 0..5u32 {
        let query = data.point(PointId(qi)).clone();
        assert_eq!(serial.colliding_ids(&query), eight.colliding_ids(&query));
    }
}

#[test]
fn lsh_rebuild_is_thread_count_independent() {
    let data = golden_dataset();
    let images = sweep(|| {
        let mut rng = StdRng::seed_from_u64(43);
        let mut index = LshIndex::build(&MinHash, params(data.len()), data.points(), &mut rng);
        index.rebuild(&data.points()[..20]);
        to_bytes(SnapshotKind::LshIndex, &index)
    });
    assert!(images.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn fair_nnis_builds_identically_at_every_thread_count() {
    let data = golden_dataset();
    let samplers: Vec<SetNnis> = sweep(|| {
        let mut rng = StdRng::seed_from_u64(2);
        FairNnis::build(&MinHash, params(data.len()), &data, near(), &mut rng)
    });
    let images: Vec<Vec<u8>> = samplers
        .iter()
        .map(|s| to_bytes(SnapshotKind::FairNnis, s))
        .collect();
    assert!(images.windows(2).all(|w| w[0] == w[1]));
    // Sample sequences stay in lockstep too.
    let query = data.point(PointId(0)).clone();
    let sequences: Vec<Vec<Option<PointId>>> = samplers
        .into_iter()
        .map(|mut s| {
            let mut rng = StdRng::seed_from_u64(99);
            (0..20).map(|_| s.sample(&query, &mut rng)).collect()
        })
        .collect();
    assert!(sequences.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn sharded_index_builds_identically_at_every_thread_count() {
    let data = golden_dataset();
    let indexes: Vec<SetSharded> = sweep(|| {
        ShardedIndex::build(
            &MinHash,
            params(data.len()),
            &data,
            near(),
            ShardedIndexConfig::with_shards(3).seeded(17),
        )
    });
    let images: Vec<Vec<u8>> = indexes
        .iter()
        .map(|s| to_bytes(SnapshotKind::ShardedIndex, s))
        .collect();
    assert!(images.windows(2).all(|w| w[0] == w[1]));
    let query = data.point(PointId(0)).clone();
    let sequences: Vec<Vec<Option<PointId>>> = indexes
        .iter()
        .map(|index| {
            let mut rng = StdRng::seed_from_u64(11);
            (0..20).map(|_| index.sample(&query, &mut rng).0).collect()
        })
        .collect();
    assert!(sequences.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn query_engine_builds_and_answers_identically_at_every_thread_count() {
    let data = golden_dataset();
    let engines: Vec<SetEngine> = sweep(|| {
        QueryEngine::build(
            &MinHash,
            params(data.len()),
            &data,
            near(),
            EngineConfig::default().with_seed(23).with_shards(4),
        )
    });
    let images: Vec<Vec<u8>> = engines
        .iter()
        .map(|e| to_bytes(SnapshotKind::QueryEngine, e))
        .collect();
    assert!(images.windows(2).all(|w| w[0] == w[1]));
    let batch: Vec<SparseSet> = (0..10u32).map(|i| data.point(PointId(i)).clone()).collect();
    let answers: Vec<_> = engines
        .into_iter()
        .map(|mut e| (e.run_batch(&batch), e.run_batch(&batch)))
        .collect();
    assert!(answers.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn snapshot_encode_and_decode_are_thread_count_independent() {
    // The sectioned container encodes, checksums and decodes per-shard /
    // per-table payloads on the build workers; the emitted bytes and the
    // restored structure must not depend on the worker count.
    let data = golden_dataset();
    let index: SetSharded = ShardedIndex::build(
        &MinHash,
        params(data.len()),
        &data,
        near(),
        ShardedIndexConfig::with_shards(3).seeded(17),
    );
    let images = sweep(|| to_bytes(SnapshotKind::ShardedIndex, &index));
    assert!(images.windows(2).all(|w| w[0] == w[1]));
    let restored = sweep(|| {
        let loaded: SetSharded = from_bytes(SnapshotKind::ShardedIndex, &images[0]).expect("load");
        to_bytes(SnapshotKind::ShardedIndex, &loaded)
    });
    for image in restored {
        assert_eq!(
            image, images[0],
            "decode must be lossless at every thread count"
        );
    }
}

#[test]
fn compaction_stays_in_lockstep_across_thread_counts() {
    // Delete enough points to trigger shard compaction (the no-rehash
    // compact_retain path) under each thread count; the surviving structure
    // and its answers must agree bit for bit. Mutations go through the
    // generational writer, so this also pins the WAL-logged commit path.
    let data = golden_dataset();
    let mut round = 0u32;
    let images = sweep(|| {
        round += 1;
        let dir = std::env::temp_dir().join(format!(
            "fairnn-compaction-sweep-{round}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut writer: EngineWriter<SparseSet, Hasher, Near> = EngineWriter::bootstrap(
            &MinHash,
            params(data.len()),
            &data,
            near(),
            ShardedIndexConfig::with_shards(3).seeded(17),
            &dir,
        )
        .expect("bootstrap");
        let mut batch = WriteBatch::new();
        for id in 0..8u32 {
            batch = batch.delete(PointId(id));
        }
        writer.commit(batch.compact()).expect("commit");
        let image = to_bytes(SnapshotKind::ShardedIndex, writer.staging());
        let _ = std::fs::remove_dir_all(dir);
        image
    });
    assert!(images.windows(2).all(|w| w[0] == w[1]));
}

/// Strategy: small random set-datasets (each set distinct enough to hash).
fn arb_sets() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..400, 3..20), 2..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_datasets_build_identically_at_1_2_8_threads(
        raw in arb_sets(),
        seed in 0u64..1000,
    ) {
        let sets: Vec<SparseSet> = raw
            .into_iter()
            .map(SparseSet::from_items)
            .collect();
        let data = Dataset::new(sets);
        let p = fairnn_integration_tests::test_params(data.len(), 0.5);
        let images = sweep(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            let index = LshIndex::build(&MinHash, p, data.points(), &mut rng);
            to_bytes(SnapshotKind::LshIndex, &index)
        });
        prop_assert!(images.windows(2).all(|w| w[0] == w[1]));
    }
}
