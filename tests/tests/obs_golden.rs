//! Instrumentation must be bit-for-bit invisible: with `fairnn-obs`
//! metrics *and* span tracing fully enabled, the seed-pinned golden
//! sequences of `golden_samples.rs` must reproduce exactly.
//!
//! The observability hooks sit on the sampling hot paths (rejection
//! rounds, cache hits, shard spans, hash-bank timers); the one thing they
//! must never touch is the RNG streams or the commit order of answers.
//! This binary runs the same builds and RNG streams as the golden suite
//! with every switch on — any perturbation shows up as a golden mismatch.
//!
//! Kept as its own integration-test binary: the enable switches are
//! process-global, so this test owns its process and cannot race other
//! suites toggling them.

use fairnn_core::{FairNnis, FairNns, NeighborSampler, SimilarityAtLeast};
use fairnn_engine::{EngineConfig, QueryEngine, ShardedIndex, ShardedIndexConfig};
use fairnn_integration_tests::{
    golden_dataset, golden_ids as ids, golden_params as params, GOLDEN_ENGINE_FIRST,
    GOLDEN_ENGINE_SECOND, GOLDEN_FAIR_NNIS, GOLDEN_FAIR_NNS, GOLDEN_SHARDED,
};
use fairnn_lsh::MinHash;
use fairnn_space::{Jaccard, PointId, SparseSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Turns every observability switch on for the duration of the test.
fn fully_instrumented() {
    fairnn_obs::set_enabled(true);
    fairnn_obs::set_tracing_enabled(true);
}

#[test]
fn fair_nns_golden_reproduces_under_instrumentation() {
    fully_instrumented();
    let data = golden_dataset();
    let mut rng = StdRng::seed_from_u64(1);
    let near = SimilarityAtLeast::new(Jaccard, 0.5);
    let mut sampler = FairNns::build(&MinHash, params(data.len()), &data, near, &mut rng);
    let mut qrng = StdRng::seed_from_u64(5);
    let got: Vec<Option<PointId>> = [0u32, 3, 7, 10, 13, 16, 19, 22, 25, 28]
        .iter()
        .map(|&qi| sampler.sample(&data.point(PointId(qi)).clone(), &mut qrng))
        .collect();
    assert_eq!(ids(&got), GOLDEN_FAIR_NNS);
}

#[test]
fn fair_nnis_golden_reproduces_under_instrumentation() {
    fully_instrumented();
    let data = golden_dataset();
    let mut rng = StdRng::seed_from_u64(2);
    let near = SimilarityAtLeast::new(Jaccard, 0.5);
    let mut sampler = FairNnis::build(&MinHash, params(data.len()), &data, near, &mut rng);
    let query = data.point(PointId(0)).clone();
    let mut qrng = StdRng::seed_from_u64(99);
    let got: Vec<Option<PointId>> = (0..20).map(|_| sampler.sample(&query, &mut qrng)).collect();
    assert_eq!(ids(&got), GOLDEN_FAIR_NNIS);
}

#[test]
fn sharded_index_golden_reproduces_under_instrumentation() {
    fully_instrumented();
    let data = golden_dataset();
    let near = SimilarityAtLeast::new(Jaccard, 0.5);
    let index = ShardedIndex::build(
        &MinHash,
        params(data.len()),
        &data,
        near,
        ShardedIndexConfig::with_shards(3).seeded(17),
    );
    let query = data.point(PointId(0)).clone();
    let mut qrng = StdRng::seed_from_u64(11);
    let got: Vec<Option<PointId>> = (0..20).map(|_| index.sample(&query, &mut qrng).0).collect();
    assert_eq!(ids(&got), GOLDEN_SHARDED);
}

#[test]
fn engine_batch_golden_reproduces_under_instrumentation() {
    fully_instrumented();
    let data = golden_dataset();
    let near = SimilarityAtLeast::new(Jaccard, 0.5);
    let mut engine = QueryEngine::build(
        &MinHash,
        params(data.len()),
        &data,
        near,
        EngineConfig::default().with_seed(23).with_shards(4),
    );
    // Both the full pipeline (first batch) and the rank-swap cache path
    // (second batch) run with every hook live.
    let batch: Vec<SparseSet> = (0..10u32).map(|i| data.point(PointId(i)).clone()).collect();
    let first: Vec<Option<PointId>> = engine.run_batch(&batch).iter().map(|a| a.id).collect();
    let second: Vec<Option<PointId>> = engine.run_batch(&batch).iter().map(|a| a.id).collect();
    assert_eq!(ids(&first), GOLDEN_ENGINE_FIRST);
    assert_eq!(ids(&second), GOLDEN_ENGINE_SECOND);
    // The hooks actually fired: the engine recorded per-query pipeline
    // metrics while reproducing the goldens.
    let queries_total = fairnn_obs::global()
        .snapshot()
        .into_iter()
        .find(|m| m.name == "engine_queries_total")
        .expect("engine metrics registered");
    assert!(queries_total.value >= 20);
}
