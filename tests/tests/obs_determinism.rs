//! Metrics aggregation ≡ serial aggregation, at every thread count.
//!
//! `build_determinism.rs` pins that the *structures* built on 1, 2 and 8
//! threads are byte-identical; this suite pins the same contract for the
//! *metrics* the instrumented pipeline emits. Every value metric — counters
//! (queries, cache hits/misses, exhaustive fallbacks), value histograms
//! (rejection rounds per draw, bucket sizes at freeze) and end-of-batch
//! gauges — is a commutative sum of per-item contributions, so its total
//! must be a pure function of the work done, not of how the work was split
//! across threads or the order per-thread shards merged back.
//!
//! Timing histograms (`*_ns`) are excluded: wall time is genuinely
//! nondeterministic, and the chunk count itself varies with the thread
//! knob. The split is exactly the one the exporters document — values are
//! comparable across runs, timings are not.
//!
//! Kept as its own integration-test binary: the enable switch and the
//! registry are process-global.

use fairnn_core::SimilarityAtLeast;
use fairnn_engine::{EngineConfig, QueryEngine};
use fairnn_integration_tests::{golden_dataset, golden_params as params};
use fairnn_lsh::{LshIndex, MinHash};
use fairnn_space::Jaccard;
use fairnn_space::{PointId, SparseSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Mutex;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The registry and thread knob are process-global; serialize the sweeps.
static KNOB: Mutex<()> = Mutex::new(());

/// One comparable row per value metric (timing rows dropped).
type ValueMetrics = BTreeMap<String, (i64, u64, Vec<(u64, u64)>)>;

fn value_metrics() -> ValueMetrics {
    fairnn_obs::global()
        .snapshot()
        .into_iter()
        .filter(|m| !m.name.ends_with("_ns"))
        .map(|m| (m.name.to_string(), (m.value, m.sum, m.buckets)))
        .collect()
}

/// A lazy handle only registers its metric on first touch, so a code path
/// taken at one thread count but not another (e.g. the 1-thread serial
/// dispatch never touches the pool gauges) leaves the metric absent rather
/// than zero. Absent ≡ all-zero for comparison purposes: pad every sweep
/// with zero rows for the union of registered names, so a metric that is
/// *non-zero* on one sweep and missing on another still fails loudly.
fn aligned(sweeps: &mut [ValueMetrics]) {
    let names: Vec<String> = sweeps.iter().flat_map(|s| s.keys().cloned()).collect();
    for sweep in sweeps {
        for name in &names {
            sweep
                .entry(name.clone())
                .or_insert_with(|| (0, 0, Vec::new()));
        }
    }
}

#[test]
fn engine_pipeline_metrics_are_identical_at_1_2_8_threads() {
    let _guard = KNOB.lock().unwrap();
    fairnn_obs::set_enabled(true);
    let data = golden_dataset();
    let near = SimilarityAtLeast::new(Jaccard, 0.5);
    let batch: Vec<SparseSet> = (0..10u32).map(|i| data.point(PointId(i)).clone()).collect();

    let mut sweeps: Vec<ValueMetrics> = Vec::new();
    for &threads in &THREAD_COUNTS {
        fairnn_parallel::set_build_threads(threads);
        fairnn_obs::global().reset();
        let mut engine = QueryEngine::build(
            &MinHash,
            params(data.len()),
            &data,
            near,
            EngineConfig::default()
                .with_seed(23)
                .with_shards(4)
                .with_threads(threads),
        );
        // First batch runs the full two-level pipeline, second rides the
        // rank-swap cache — both paths contribute to the counters.
        let _ = engine.run_batch(&batch);
        let _ = engine.run_batch(&batch);
        sweeps.push(value_metrics());
    }
    fairnn_parallel::set_build_threads(0);
    aligned(&mut sweeps);

    assert!(
        !sweeps[0].is_empty(),
        "instrumented run must register value metrics"
    );
    assert!(
        sweeps[0].contains_key("engine_queries_total"),
        "engine counters missing from {:?}",
        sweeps[0]
    );
    assert_eq!(
        sweeps[0], sweeps[1],
        "value metrics diverged between 1 and 2 threads"
    );
    assert_eq!(
        sweeps[0], sweeps[2],
        "value metrics diverged between 1 and 8 threads"
    );
}

#[test]
fn freeze_metrics_are_identical_at_1_2_8_threads() {
    // The bucket-size histogram is recorded shard-locally on the build
    // workers at freeze time and merged once per table; the aggregate must
    // not depend on the worker count.
    let _guard = KNOB.lock().unwrap();
    fairnn_obs::set_enabled(true);
    let data = golden_dataset();

    let mut sweeps: Vec<ValueMetrics> = Vec::new();
    for &threads in &THREAD_COUNTS {
        fairnn_parallel::set_build_threads(threads);
        fairnn_obs::global().reset();
        let mut rng = StdRng::seed_from_u64(41);
        let _index = LshIndex::build(&MinHash, params(data.len()), data.points(), &mut rng);
        sweeps.push(value_metrics());
    }
    fairnn_parallel::set_build_threads(0);
    aligned(&mut sweeps);

    assert!(
        sweeps[0].contains_key("lsh_bucket_size"),
        "bucket-size histogram missing from {:?}",
        sweeps[0]
    );
    assert_eq!(sweeps[0], sweeps[1]);
    assert_eq!(sweeps[0], sweeps[2]);
}
