//! Snapshot persistence: disk roundtrips must be invisible to sampling.
//!
//! Three families of guarantees are pinned here:
//!
//! 1. **Golden identity** — a structure restored via `load()` reproduces
//!    the exact seed-pinned sample sequences of `golden_samples.rs`
//!    (same constants, same RNG streams), for every persisted structure:
//!    `FairNns`, `FairNnis`, `RankSwapSampler`, `ShardedIndex`,
//!    `QueryEngine`.
//! 2. **Canonical encoding** — `save → load → save` is byte-identical.
//! 3. **Rejection, not panic** — corrupted, truncated and version-bumped
//!    snapshots fail with the matching typed [`SnapshotError`] variant;
//!    property tests hammer the loader with random mutations (including
//!    checksum-repaired payload corruption, which exercises the decoders
//!    themselves) and require an error or a clean decode, never a panic.

use fairnn_core::{FairNnis, FairNns, NeighborSampler, RankSwapSampler, SimilarityAtLeast};
use fairnn_engine::{
    EngineConfig, EngineWriter, QueryEngine, QueryRequest, ShardedIndex, ShardedIndexConfig,
    WriteBatch, CHECKPOINT_FILE, WAL_FILE,
};
use fairnn_integration_tests::{
    golden_dataset, golden_ids as ids, golden_params as params, GOLDEN_ENGINE_FIRST,
    GOLDEN_ENGINE_SECOND, GOLDEN_FAIR_NNIS, GOLDEN_FAIR_NNS, GOLDEN_RANK_SWAP, GOLDEN_SHARDED,
};
use fairnn_lsh::{ConcatenatedHasher, MinHash, MinHasher};
use fairnn_snapshot::{
    from_bytes, to_bytes, SnapshotError, SnapshotImage, SnapshotKind, FORMAT_VERSION, HEADER_LEN,
};
use fairnn_space::{Jaccard, PointId, SparseSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

type Hasher = ConcatenatedHasher<MinHasher>;
type Near = SimilarityAtLeast<Jaccard>;
type SetNns = FairNns<SparseSet, Hasher, Near>;
type SetNnis = FairNnis<SparseSet, Hasher, Near>;
type SetRankSwap = RankSwapSampler<SparseSet, Hasher, Near>;
type SetSharded = ShardedIndex<SparseSet, Hasher, Near>;
type SetEngine = QueryEngine<SparseSet, Hasher, Near>;
type SetWriter = EngineWriter<SparseSet, Hasher, Near>;

fn near() -> Near {
    SimilarityAtLeast::new(Jaccard, 0.5)
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fairnn-roundtrip-{}-{name}.snap",
        std::process::id()
    ))
}

/// Saves to a real file, loads back, removes the file.
fn file_roundtrip<T, S, L>(value: &T, name: &str, save: S, load: L) -> T
where
    S: FnOnce(&T, &PathBuf),
    L: FnOnce(&PathBuf) -> T,
{
    let path = temp_path(name);
    save(value, &path);
    let restored = load(&path);
    let _ = std::fs::remove_file(&path);
    restored
}

#[test]
fn loaded_fair_nns_reproduces_the_golden_sequence() {
    let data = golden_dataset();
    let mut rng = StdRng::seed_from_u64(1);
    let sampler: SetNns = FairNns::build(&MinHash, params(data.len()), &data, near(), &mut rng);
    let mut loaded = file_roundtrip(
        &sampler,
        "fair-nns",
        |s, p| s.save(p).expect("save"),
        |p| SetNns::load(p).expect("load"),
    );
    let mut qrng = StdRng::seed_from_u64(5);
    let got: Vec<Option<PointId>> = [0u32, 3, 7, 10, 13, 16, 19, 22, 25, 28]
        .iter()
        .map(|&qi| loaded.sample(&data.point(PointId(qi)).clone(), &mut qrng))
        .collect();
    assert_eq!(ids(&got), GOLDEN_FAIR_NNS);
}

#[test]
fn loaded_fair_nnis_reproduces_the_golden_sequence() {
    let data = golden_dataset();
    let mut rng = StdRng::seed_from_u64(2);
    let sampler: SetNnis = FairNnis::build(&MinHash, params(data.len()), &data, near(), &mut rng);
    let mut loaded = file_roundtrip(
        &sampler,
        "fair-nnis",
        |s, p| s.save(p).expect("save"),
        |p| SetNnis::load(p).expect("load"),
    );
    let query = data.point(PointId(0)).clone();
    let mut qrng = StdRng::seed_from_u64(99);
    let got: Vec<Option<PointId>> = (0..20).map(|_| loaded.sample(&query, &mut qrng)).collect();
    assert_eq!(ids(&got), GOLDEN_FAIR_NNIS);
}

#[test]
fn loaded_rank_swap_reproduces_the_golden_sequence() {
    let data = golden_dataset();
    let mut rng = StdRng::seed_from_u64(3);
    let sampler: SetRankSwap =
        RankSwapSampler::build(&MinHash, params(data.len()), &data, near(), &mut rng);
    let mut loaded = file_roundtrip(
        &sampler,
        "rank-swap",
        |s, p| s.save(p).expect("save"),
        |p| SetRankSwap::load(p).expect("load"),
    );
    let query = data.point(PointId(4)).clone();
    let mut qrng = StdRng::seed_from_u64(7);
    let got: Vec<Option<PointId>> = (0..20).map(|_| loaded.sample(&query, &mut qrng)).collect();
    assert_eq!(ids(&got), GOLDEN_RANK_SWAP);
}

#[test]
fn mid_sequence_rank_swap_snapshot_continues_the_sequence() {
    // The rank-swap sampler mutates its permutation on every draw; a
    // snapshot taken mid-sequence must capture that state, so the restored
    // sampler continues exactly where the saved one stood.
    let data = golden_dataset();
    let mut rng = StdRng::seed_from_u64(3);
    let mut sampler: SetRankSwap =
        RankSwapSampler::build(&MinHash, params(data.len()), &data, near(), &mut rng);
    let query = data.point(PointId(4)).clone();
    let mut qrng = StdRng::seed_from_u64(7);
    let mut got: Vec<Option<PointId>> =
        (0..10).map(|_| sampler.sample(&query, &mut qrng)).collect();
    let mut restored = file_roundtrip(
        &sampler,
        "rank-swap-mid",
        |s, p| s.save(p).expect("save"),
        |p| SetRankSwap::load(p).expect("load"),
    );
    got.extend((0..10).map(|_| restored.sample(&query, &mut qrng)));
    assert_eq!(ids(&got), GOLDEN_RANK_SWAP);
}

#[test]
fn loaded_sharded_index_reproduces_the_golden_sequence() {
    let data = golden_dataset();
    let index: SetSharded = ShardedIndex::build(
        &MinHash,
        params(data.len()),
        &data,
        near(),
        ShardedIndexConfig::with_shards(3).seeded(17),
    );
    let loaded = file_roundtrip(
        &index,
        "sharded",
        |s, p| s.save(p).expect("save"),
        |p| SetSharded::load(p).expect("load"),
    );
    let query = data.point(PointId(0)).clone();
    let mut qrng = StdRng::seed_from_u64(11);
    let got: Vec<Option<PointId>> = (0..20)
        .map(|_| loaded.sample(&query, &mut qrng).0)
        .collect();
    assert_eq!(ids(&got), GOLDEN_SHARDED);
}

#[test]
fn loaded_query_engine_reproduces_the_golden_batches() {
    // The acceptance criterion of the snapshot subsystem: an engine restored
    // from disk answers the pinned batches bit-for-bit — including the
    // second batch, which rides the rank-swap cache.
    let data = golden_dataset();
    let engine: SetEngine = QueryEngine::build(
        &MinHash,
        params(data.len()),
        &data,
        near(),
        EngineConfig::default().with_seed(23).with_shards(4),
    );
    let mut loaded = file_roundtrip(
        &engine,
        "engine",
        |s, p| s.save(p).expect("save"),
        |p| SetEngine::load(p).expect("load"),
    );
    let batch: Vec<SparseSet> = (0..10u32).map(|i| data.point(PointId(i)).clone()).collect();
    let first: Vec<Option<PointId>> = loaded.run_batch(&batch).iter().map(|a| a.id).collect();
    let second: Vec<Option<PointId>> = loaded.run_batch(&batch).iter().map(|a| a.id).collect();
    assert_eq!(ids(&first), GOLDEN_ENGINE_FIRST);
    assert_eq!(ids(&second), GOLDEN_ENGINE_SECOND);
}

/// Saves via the structure's own `save`, reopens through the explicit
/// [`SnapshotImage`] path (one verified buffer, borrowed columns), decodes.
fn via_image<T, S>(value: &T, name: &str, kind: SnapshotKind, save: S) -> T
where
    T: fairnn_snapshot::Codec,
    S: FnOnce(&T, &PathBuf),
{
    let path = temp_path(name);
    save(value, &path);
    let image = SnapshotImage::open(&path).expect("open snapshot image");
    let _ = std::fs::remove_file(&path);
    assert_eq!(image.kind_tag(), kind.tag(), "header kind tag");
    image.decode(kind).expect("decode from image")
}

#[test]
fn snapshot_image_decoded_structures_replay_every_golden_sequence() {
    // The explicit zero-copy path — `SnapshotImage::open` → `decode`, all
    // columns borrowing the one image buffer — must replay all four
    // seed-pinned golden sequences and both engine batches byte-identically
    // to the live structures. (`load()` routes through the same image, but
    // this pins the public API an embedding process would use to share one
    // page-cache-resident image across consumers.)
    let data = golden_dataset();
    let p = params(data.len());

    let mut rng = StdRng::seed_from_u64(1);
    let nns: SetNns = FairNns::build(&MinHash, p, &data, near(), &mut rng);
    let mut nns = via_image(&nns, "image-nns", SnapshotKind::FairNns, |s, path| {
        s.save(path).expect("save")
    });
    let mut qrng = StdRng::seed_from_u64(5);
    let got: Vec<Option<PointId>> = [0u32, 3, 7, 10, 13, 16, 19, 22, 25, 28]
        .iter()
        .map(|&qi| nns.sample(&data.point(PointId(qi)).clone(), &mut qrng))
        .collect();
    assert_eq!(ids(&got), GOLDEN_FAIR_NNS);

    let mut rng = StdRng::seed_from_u64(2);
    let nnis: SetNnis = FairNnis::build(&MinHash, p, &data, near(), &mut rng);
    let mut nnis = via_image(&nnis, "image-nnis", SnapshotKind::FairNnis, |s, path| {
        s.save(path).expect("save")
    });
    let query = data.point(PointId(0)).clone();
    let mut qrng = StdRng::seed_from_u64(99);
    let got: Vec<Option<PointId>> = (0..20).map(|_| nnis.sample(&query, &mut qrng)).collect();
    assert_eq!(ids(&got), GOLDEN_FAIR_NNIS);

    let mut rng = StdRng::seed_from_u64(3);
    let swap: SetRankSwap = RankSwapSampler::build(&MinHash, p, &data, near(), &mut rng);
    let mut swap = via_image(&swap, "image-swap", SnapshotKind::RankSwap, |s, path| {
        s.save(path).expect("save")
    });
    let query = data.point(PointId(4)).clone();
    let mut qrng = StdRng::seed_from_u64(7);
    let got: Vec<Option<PointId>> = (0..20).map(|_| swap.sample(&query, &mut qrng)).collect();
    assert_eq!(ids(&got), GOLDEN_RANK_SWAP);

    let sharded: SetSharded = ShardedIndex::build(
        &MinHash,
        p,
        &data,
        near(),
        ShardedIndexConfig::with_shards(3).seeded(17),
    );
    let sharded = via_image(
        &sharded,
        "image-sharded",
        SnapshotKind::ShardedIndex,
        |s, path| s.save(path).expect("save"),
    );
    let query = data.point(PointId(0)).clone();
    let mut qrng = StdRng::seed_from_u64(11);
    let got: Vec<Option<PointId>> = (0..20)
        .map(|_| sharded.sample(&query, &mut qrng).0)
        .collect();
    assert_eq!(ids(&got), GOLDEN_SHARDED);

    let engine: SetEngine = QueryEngine::build(
        &MinHash,
        p,
        &data,
        near(),
        EngineConfig::default().with_seed(23).with_shards(4),
    );
    let mut engine = via_image(
        &engine,
        "image-engine",
        SnapshotKind::QueryEngine,
        |s, path| s.save(path).expect("save"),
    );
    let batch: Vec<SparseSet> = (0..10u32).map(|i| data.point(PointId(i)).clone()).collect();
    let first: Vec<Option<PointId>> = engine.run_batch(&batch).iter().map(|a| a.id).collect();
    let second: Vec<Option<PointId>> = engine.run_batch(&batch).iter().map(|a| a.id).collect();
    assert_eq!(ids(&first), GOLDEN_ENGINE_FIRST);
    assert_eq!(ids(&second), GOLDEN_ENGINE_SECOND);
}

#[test]
fn save_load_save_is_byte_identical_for_every_structure() {
    let data = golden_dataset();
    let p = params(data.len());

    let mut rng = StdRng::seed_from_u64(1);
    let nns: SetNns = FairNns::build(&MinHash, p, &data, near(), &mut rng);
    let bytes = to_bytes(SnapshotKind::FairNns, &nns);
    let back: SetNns = from_bytes(SnapshotKind::FairNns, &bytes).expect("load");
    assert_eq!(to_bytes(SnapshotKind::FairNns, &back), bytes, "FairNns");

    let mut rng = StdRng::seed_from_u64(2);
    let nnis: SetNnis = FairNnis::build(&MinHash, p, &data, near(), &mut rng);
    let bytes = to_bytes(SnapshotKind::FairNnis, &nnis);
    let back: SetNnis = from_bytes(SnapshotKind::FairNnis, &bytes).expect("load");
    assert_eq!(to_bytes(SnapshotKind::FairNnis, &back), bytes, "FairNnis");

    let mut rng = StdRng::seed_from_u64(3);
    let swap: SetRankSwap = RankSwapSampler::build(&MinHash, p, &data, near(), &mut rng);
    let bytes = to_bytes(SnapshotKind::RankSwap, &swap);
    let back: SetRankSwap = from_bytes(SnapshotKind::RankSwap, &bytes).expect("load");
    assert_eq!(to_bytes(SnapshotKind::RankSwap, &back), bytes, "RankSwap");

    let sharded: SetSharded = ShardedIndex::build(
        &MinHash,
        p,
        &data,
        near(),
        ShardedIndexConfig::with_shards(3).seeded(17),
    );
    let bytes = to_bytes(SnapshotKind::ShardedIndex, &sharded);
    let back: SetSharded = from_bytes(SnapshotKind::ShardedIndex, &bytes).expect("load");
    assert_eq!(
        to_bytes(SnapshotKind::ShardedIndex, &back),
        bytes,
        "ShardedIndex"
    );

    let mut engine: SetEngine = QueryEngine::build(
        &MinHash,
        p,
        &data,
        near(),
        EngineConfig::default().with_seed(23).with_shards(4),
    );
    // Warm the cache so the canonical-encoding claim covers a non-trivial
    // cache state too.
    let batch: Vec<SparseSet> = (0..10u32).map(|i| data.point(PointId(i)).clone()).collect();
    let _ = engine.run_batch(&batch);
    let bytes = to_bytes(SnapshotKind::QueryEngine, &engine);
    let back: SetEngine = from_bytes(SnapshotKind::QueryEngine, &bytes).expect("load");
    assert_eq!(
        to_bytes(SnapshotKind::QueryEngine, &back),
        bytes,
        "QueryEngine"
    );
}

#[test]
fn updates_after_load_behave_like_updates_after_freeze() {
    // Staging mutations on a recovered engine must thaw and answer exactly
    // like the same mutations applied to the writer it was saved from: the
    // live path and checkpoint-recovery path share one apply routine.
    let data = golden_dataset();
    let dir_live = std::env::temp_dir().join(format!(
        "fairnn-roundtrip-writer-live-{}",
        std::process::id()
    ));
    let dir_copy = std::env::temp_dir().join(format!(
        "fairnn-roundtrip-writer-copy-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir_live);
    let _ = std::fs::remove_dir_all(&dir_copy);
    let mut writer: SetWriter = EngineWriter::bootstrap(
        &MinHash,
        params(data.len()),
        &data,
        near(),
        ShardedIndexConfig::with_shards(4).seeded(23),
        &dir_live,
    )
    .expect("bootstrap");
    std::fs::create_dir_all(&dir_copy).expect("mkdir");
    for file in [CHECKPOINT_FILE, WAL_FILE] {
        std::fs::copy(dir_live.join(file), dir_copy.join(file)).expect("copy engine dir");
    }
    let mut loaded: SetWriter = EngineWriter::open(&dir_copy).expect("open");

    let mut items: Vec<u32> = (0..25).collect();
    items.push(100);
    items.push(777);
    let twin = SparseSet::from_items(items);
    let live_receipt = writer
        .commit(WriteBatch::new().insert(twin.clone()))
        .expect("live commit");
    let loaded_receipt = loaded
        .commit(WriteBatch::new().insert(twin.clone()))
        .expect("loaded commit");
    assert_eq!(live_receipt.assigned, loaded_receipt.assigned);

    let batch: Vec<SparseSet> = (0..10u32)
        .map(|i| data.point(PointId(i)).clone())
        .chain(std::iter::once(twin))
        .collect();
    for b in 0..3u64 {
        let request = QueryRequest::new(batch.clone()).with_batch(b);
        assert_eq!(
            writer.reader().pin().run_batch(&request),
            loaded.reader().pin().run_batch(&request)
        );
    }

    // Deletes (which may trigger shard compaction) stay in lockstep too.
    writer
        .commit(WriteBatch::new().delete(PointId(0)))
        .expect("live delete");
    loaded
        .commit(WriteBatch::new().delete(PointId(0)))
        .expect("loaded delete");
    let request = QueryRequest::new(batch).with_batch(9);
    assert_eq!(
        writer.reader().pin().run_batch(&request),
        loaded.reader().pin().run_batch(&request)
    );
    assert_eq!(
        to_bytes(SnapshotKind::ShardedIndex, writer.staging()),
        to_bytes(SnapshotKind::ShardedIndex, loaded.staging()),
        "live and recovered staging diverged"
    );
    let _ = std::fs::remove_dir_all(dir_live);
    let _ = std::fs::remove_dir_all(dir_copy);
}

/// A small FairNns snapshot image the corruption tests mutate.
fn small_snapshot() -> Vec<u8> {
    static IMAGE: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    IMAGE
        .get_or_init(|| {
            let data = golden_dataset();
            let mut rng = StdRng::seed_from_u64(1);
            let sampler: SetNns =
                FairNns::build(&MinHash, params(data.len()), &data, near(), &mut rng);
            to_bytes(SnapshotKind::FairNns, &sampler)
        })
        .clone()
}

/// A FairNnis snapshot image (carries per-bucket sketches and the distinct
/// value table — the state whose cross-structure invariants the decoder
/// must re-verify).
fn small_nnis_snapshot() -> Vec<u8> {
    static IMAGE: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    IMAGE
        .get_or_init(|| {
            let data = golden_dataset();
            let mut rng = StdRng::seed_from_u64(2);
            let sampler: SetNnis =
                FairNnis::build(&MinHash, params(data.len()), &data, near(), &mut rng);
            to_bytes(SnapshotKind::FairNnis, &sampler)
        })
        .clone()
}

/// A ShardedIndex snapshot image (per-shard KMV sketches + partition map).
fn small_sharded_snapshot() -> Vec<u8> {
    static IMAGE: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    IMAGE
        .get_or_init(|| {
            let data = golden_dataset();
            let index: SetSharded = ShardedIndex::build(
                &MinHash,
                params(data.len()),
                &data,
                near(),
                ShardedIndexConfig::with_shards(3).seeded(17),
            );
            to_bytes(SnapshotKind::ShardedIndex, &index)
        })
        .clone()
}

/// Flips one payload byte and repairs every checksum (each section's
/// directory entry plus the header checksum over the directory), so the
/// mutation reaches the structural decoders instead of the checksum wall.
fn flip_and_repair(bytes: &[u8], offset: usize, flip: u8) -> Vec<u8> {
    let offset = HEADER_LEN + (offset % (bytes.len() - HEADER_LEN));
    let mut mutated = bytes.to_vec();
    mutated[offset] ^= flip;
    fairnn_snapshot::repair_checksums(&mut mutated);
    mutated
}

fn load_small(bytes: &[u8]) -> Result<SetNns, SnapshotError> {
    from_bytes(SnapshotKind::FairNns, bytes)
}

#[test]
fn corrupted_truncated_and_version_bumped_snapshots_fail_typed() {
    let bytes = small_snapshot();

    // Payload corruption → checksum mismatch.
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x40;
    assert!(matches!(
        load_small(&corrupt),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));

    // Truncation → typed truncation error, at header and payload cuts.
    for cut in [
        0,
        4,
        HEADER_LEN - 1,
        HEADER_LEN,
        bytes.len() / 2,
        bytes.len() - 1,
    ] {
        assert!(
            matches!(
                load_small(&bytes[..cut]),
                Err(SnapshotError::Truncated { .. })
            ),
            "cut at {cut} must report truncation"
        );
    }

    // Version bump → typed version rejection (no migration shims).
    let mut bumped = bytes.clone();
    bumped[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    assert!(matches!(
        load_small(&bumped),
        Err(SnapshotError::UnsupportedVersion { found, supported })
            if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
    ));

    // Old-version files — the flat v1 layout and the unaligned v2 sections
    // — get the same typed rejection (no migration shims), and the message
    // tells the operator how to move forward: re-save with a current
    // binary to produce the aligned v3 image.
    for found in [1u32, 2] {
        let mut old = bytes.clone();
        old[8..12].copy_from_slice(&found.to_le_bytes());
        let err = load_small(&old).expect_err("an old-version file must not load");
        assert!(matches!(
            err,
            SnapshotError::UnsupportedVersion { found: f, supported }
                if f == found && supported == FORMAT_VERSION
        ));
        let message = err.to_string();
        assert!(
            message.contains("re-sav") && message.contains(&format!("version {FORMAT_VERSION}")),
            "v{found} error must carry an upgrade hint, got: {message}"
        );
    }

    // Wrong magic → BadMagic.
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'Z';
    assert!(matches!(
        load_small(&wrong_magic),
        Err(SnapshotError::BadMagic { .. })
    ));

    // Wrong structure kind → KindMismatch (a FairNnis loader must refuse a
    // FairNns file instead of misreading it).
    assert!(matches!(
        from_bytes::<SetNnis>(SnapshotKind::FairNnis, &bytes),
        Err(SnapshotError::KindMismatch { .. })
    ));

    // Trailing garbage → TrailingBytes.
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0, 1, 2]);
    assert!(matches!(
        load_small(&padded),
        Err(SnapshotError::TrailingBytes { .. })
    ));

    // The pristine image still loads.
    assert!(load_small(&bytes).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_single_byte_flips_never_panic(offset in 0usize..1 << 16, flip in 1u8..=255) {
        let bytes = small_snapshot();
        let offset = offset % bytes.len();
        // Offsets 16..20 are the reserved header field, which loaders
        // deliberately ignore; everywhere else a flip must be rejected.
        let mut mutated = bytes.clone();
        mutated[offset] ^= flip;
        match load_small(&mutated) {
            Err(_) => {}
            Ok(_) => prop_assert!(
                (16..20).contains(&offset),
                "flip at {offset} was accepted outside the reserved field"
            ),
        }
    }

    #[test]
    fn random_truncations_never_panic(cut in 0usize..1 << 16) {
        let bytes = small_snapshot();
        let cut = cut % bytes.len();
        prop_assert!(load_small(&bytes[..cut]).is_err());
    }

    #[test]
    fn checksum_repaired_corruption_is_rejected_or_decoded_never_panics(
        offset in 0usize..1 << 16,
        flip in 1u8..=255,
    ) {
        // The decoders must survive arbitrary checksum-valid payloads:
        // either a typed error or a structurally valid value, never a
        // panic.
        let mutated = flip_and_repair(&small_snapshot(), offset, flip);
        let _ = load_small(&mutated);
    }

    #[test]
    fn corrupt_fair_nnis_snapshots_reject_at_load_or_serve_cleanly(
        offset in 0usize..1 << 20,
        flip in 1u8..=255,
    ) {
        // FairNnis carries per-bucket sketches whose seeds/parameters must
        // agree with the sampler's accumulator: a mutation that breaks that
        // cross-structure invariant must be rejected by `load`, not panic
        // inside `merge` on the first query.
        let mutated = flip_and_repair(&small_nnis_snapshot(), offset, flip);
        if let Ok(mut loaded) = from_bytes::<SetNnis>(SnapshotKind::FairNnis, &mutated) {
            let data = golden_dataset();
            let query = data.point(PointId(0)).clone();
            let mut qrng = StdRng::seed_from_u64(99);
            for _ in 0..3 {
                let _ = loaded.sample(&query, &mut qrng);
            }
        }
    }

    #[test]
    fn corrupt_sharded_snapshots_reject_at_load_or_serve_cleanly(
        offset in 0usize..1 << 20,
        flip in 1u8..=255,
    ) {
        // Same property for the shard-level KMV sketches.
        let mutated = flip_and_repair(&small_sharded_snapshot(), offset, flip);
        if let Ok(loaded) = from_bytes::<SetSharded>(SnapshotKind::ShardedIndex, &mutated) {
            let data = golden_dataset();
            let query = data.point(PointId(0)).clone();
            let mut qrng = StdRng::seed_from_u64(11);
            for _ in 0..3 {
                let _ = loaded.sample(&query, &mut qrng);
            }
        }
    }
}
