//! The zero-copy acceptance criterion: a warm [`QueryEngine`] load through
//! [`SnapshotImage`] performs **O(1) large allocations** — the number of
//! ≥ 64 KiB allocations must not grow with the dataset, because every
//! fixed-width column borrows the one verified image buffer instead of
//! being copied out per section.
//!
//! This test lives in its own integration binary because it installs the
//! [`CountingAlloc`] global allocator (one per binary), the same meter the
//! `snapshot_cycle` bench reports through `BENCH_snapshot.json`.

use fairnn_core::SimilarityAtLeast;
use fairnn_engine::{EngineConfig, QueryEngine};
use fairnn_integration_tests::test_dataset;
use fairnn_lsh::{ConcatenatedHasher, OneBitMinHash, OneBitMinHasher};
use fairnn_snapshot::{CountingAlloc, SnapshotImage, SnapshotKind};
use fairnn_space::{Dataset, Jaccard, SparseSet};
use std::path::PathBuf;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

type SetEngine =
    QueryEngine<SparseSet, ConcatenatedHasher<OneBitMinHasher>, SimilarityAtLeast<Jaccard>>;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fairnn-load-allocs-{}-{name}.snap",
        std::process::id()
    ))
}

/// Builds an engine over `data`, saves it, and counts the large
/// allocations of the image-open + decode path. Returns the count and the
/// snapshot size so callers can confirm the workload actually scaled.
fn large_allocs_for_load(data: &Dataset<SparseSet>, name: &str) -> (u64, u64) {
    let near = SimilarityAtLeast::new(Jaccard, 0.3);
    let params = fairnn_lsh::ParamsBuilder::new(data.len(), 0.3, 0.05)
        .with_recall(0.9)
        .empirical(&OneBitMinHash);
    let mut engine: SetEngine = QueryEngine::build(
        &OneBitMinHash,
        params,
        data,
        near,
        EngineConfig::default().with_seed(7).with_shards(2),
    );
    // Warm the rank-swap cache so the snapshot carries serving state.
    let batch: Vec<SparseSet> = data.points().iter().take(8).cloned().collect();
    let _ = engine.run_batch(&batch);

    let path = temp_path(name);
    engine.save(&path).expect("save engine snapshot");
    let snapshot_bytes = std::fs::metadata(&path).expect("stat snapshot").len();

    CountingAlloc::reset();
    let image = SnapshotImage::open(&path).expect("open snapshot image");
    let mut loaded: SetEngine = image.decode(SnapshotKind::QueryEngine).expect("decode");
    let count = CountingAlloc::large_allocs();
    let _ = std::fs::remove_file(&path);

    // The loaded engine must actually serve (the count would be
    // meaningless for a lazily-decoded husk).
    assert_eq!(engine.run_batch(&batch), loaded.run_batch(&batch));
    (count, snapshot_bytes)
}

#[test]
fn image_load_performs_constant_large_allocations() {
    let small = test_dataset(11);
    let mut sets: Vec<SparseSet> = small.points().to_vec();
    for seed in 12..18u64 {
        sets.extend(test_dataset(seed).points().iter().cloned());
    }
    let big = Dataset::new(sets);

    let (small_count, small_bytes) = large_allocs_for_load(&small, "small");
    let (big_count, big_bytes) = large_allocs_for_load(&big, "big");

    assert!(
        big_bytes > small_bytes * 3,
        "the big snapshot ({big_bytes} B) must dwarf the small one ({small_bytes} B) \
         for the O(1) claim to be tested"
    );
    // O(1): the count must not grow with the dataset. (A per-section or
    // per-element copy path scales with points and blows well past this.)
    assert_eq!(
        big_count, small_count,
        "large allocations grew with the dataset: {small_count} → {big_count}"
    );
    // And the constant is small: the image buffer plus O(1) bookkeeping.
    assert!(
        small_count <= 4,
        "expected a handful of large allocations per load, got {small_count}"
    );
}
