//! End-to-end fairness: generate a workload, build every sampler, measure
//! the output distribution against the exact neighbourhood, and assert the
//! paper's qualitative findings (standard LSH is biased towards similar
//! points, the fair structures are statistically uniform).

use fairnn_core::{
    ExactSampler, FairNnis, FairNns, NaiveFairLsh, NeighborSampler, RankSwapSampler,
    SimilarityAtLeast, StandardLsh,
};
use fairnn_integration_tests::{test_dataset, test_params};
use fairnn_lsh::OneBitMinHash;
use fairnn_space::{Dataset, Jaccard, PointId, Similarity, SparseSet};
use fairnn_stats::{FrequencyHistogram, SimilarityProfile, UniformityReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

const R: f64 = 0.25;

fn pick_query(dataset: &Dataset<SparseSet>) -> (SparseSet, Vec<PointId>) {
    // The first clustered user always has a non-trivial neighbourhood.
    let query = dataset.point(PointId(0)).clone();
    let neighborhood = dataset.similar_indices(&Jaccard, &query, R);
    assert!(
        neighborhood.len() >= 10,
        "fixture query has only {} neighbours",
        neighborhood.len()
    );
    (query, neighborhood)
}

fn run<S: NeighborSampler<SparseSet>>(
    sampler: &mut S,
    query: &SparseSet,
    repetitions: usize,
    seed: u64,
) -> FrequencyHistogram {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hist = FrequencyHistogram::new();
    for _ in 0..repetitions {
        hist.record(sampler.sample(query, &mut rng));
    }
    hist
}

#[test]
fn fair_nnis_output_is_statistically_uniform() {
    let data = test_dataset(1);
    let (query, neighborhood) = pick_query(&data);
    let params = test_params(data.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let mut rng = StdRng::seed_from_u64(2);
    let mut sampler = FairNnis::build(&OneBitMinHash, params, &data, near, &mut rng);
    let hist = run(&mut sampler, &query, 6000, 3);
    let report = UniformityReport::from_histogram(&hist, &neighborhood);
    assert_eq!(report.out_of_support, 0.0, "returned a non-neighbour");
    assert!(
        report.total_variation < 0.12,
        "total variation {} too high",
        report.total_variation
    );
    assert!(
        report.is_consistent_with_uniform(1e-4),
        "chi-square rejects uniformity: chi2 = {}, p = {}",
        report.chi_square,
        report.chi_square_p_value()
    );
}

#[test]
fn rank_swap_sampler_is_uniform_for_a_repeated_query() {
    let data = test_dataset(2);
    let (query, neighborhood) = pick_query(&data);
    let params = test_params(data.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let mut rng = StdRng::seed_from_u64(4);
    let mut sampler = RankSwapSampler::build(&OneBitMinHash, params, &data, near, &mut rng);
    let hist = run(&mut sampler, &query, 6000, 5);
    let report = UniformityReport::from_histogram(&hist, &neighborhood);
    assert_eq!(report.out_of_support, 0.0);
    assert!(
        report.total_variation < 0.12,
        "TV = {}",
        report.total_variation
    );
}

#[test]
fn naive_fair_lsh_matches_the_exact_sampler_distribution() {
    let data = test_dataset(3);
    let (query, neighborhood) = pick_query(&data);
    let params = test_params(data.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let mut rng = StdRng::seed_from_u64(6);
    let mut naive = NaiveFairLsh::build(&OneBitMinHash, params, &data, near, &mut rng);
    let mut exact = ExactSampler::new(&data, near);
    let hist_naive = run(&mut naive, &query, 5000, 7);
    let hist_exact = run(&mut exact, &query, 5000, 8);
    let report_naive = UniformityReport::from_histogram(&hist_naive, &neighborhood);
    let report_exact = UniformityReport::from_histogram(&hist_exact, &neighborhood);
    assert!(report_naive.total_variation < 0.12);
    assert!(report_exact.total_variation < 0.12);
    assert_eq!(report_naive.out_of_support, 0.0);
}

#[test]
fn standard_lsh_is_biased_towards_similar_points() {
    let data = test_dataset(4);
    let (query, neighborhood) = pick_query(&data);
    let params = test_params(data.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let mut rng = StdRng::seed_from_u64(9);
    let mut standard = StandardLsh::build(&OneBitMinHash, params, &data, near, &mut rng);
    let mut fair = FairNnis::build(&OneBitMinHash, params, &data, near, &mut rng);

    let hist_standard = run(&mut standard, &query, 6000, 10);
    let hist_fair = run(&mut fair, &query, 6000, 11);

    let members: Vec<(PointId, f64)> = neighborhood
        .iter()
        .map(|id| (*id, Jaccard.similarity(&query, data.point(*id))))
        .collect();
    let profile_standard = SimilarityProfile::from_histogram(&hist_standard, &members, 2);
    let profile_fair = SimilarityProfile::from_histogram(&hist_fair, &members, 2);

    let report_standard = UniformityReport::from_histogram(&hist_standard, &neighborhood);
    let report_fair = UniformityReport::from_histogram(&hist_fair, &neighborhood);

    // Figure 1's qualitative message, as assertions:
    // 1. the fair structure is closer to uniform than the standard query;
    assert!(
        report_fair.total_variation < report_standard.total_variation,
        "fair TV {} not smaller than standard TV {}",
        report_fair.total_variation,
        report_standard.total_variation
    );
    // 2. the standard query correlates output frequency with similarity
    //    more strongly than the fair one.
    assert!(
        profile_standard.similarity_frequency_correlation()
            > profile_fair.similarity_frequency_correlation() - 0.05,
        "standard corr {} vs fair corr {}",
        profile_standard.similarity_frequency_correlation(),
        profile_fair.similarity_frequency_correlation()
    );
    // 3. the standard query never returns a non-neighbour either (it is
    //    unfair, not incorrect).
    assert_eq!(report_standard.out_of_support, 0.0);
}

#[test]
fn fair_nns_is_uniform_over_reconstructions() {
    // Definition 1 (r-NNS): uniformity holds over the randomness of the
    // construction. Rebuild the structure many times with the same data and
    // count which neighbour is reported.
    let data = test_dataset(5);
    let (query, neighborhood) = pick_query(&data);
    let params = test_params(data.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let mut hist = FrequencyHistogram::new();
    for seed in 0..400u64 {
        let mut rng = StdRng::seed_from_u64(10_000 + seed);
        let mut sampler = FairNns::build(&OneBitMinHash, params, &data, near, &mut rng);
        hist.record(sampler.sample(&query, &mut rng));
    }
    let report = UniformityReport::from_histogram(&hist, &neighborhood);
    assert_eq!(report.out_of_support, 0.0);
    // 400 rebuilds over ~15+ neighbours is noisy; just require that no single
    // point dominates and that nothing outside the neighbourhood shows up.
    assert!(
        report.total_variation < 0.35,
        "TV over rebuilds = {}",
        report.total_variation
    );
}
