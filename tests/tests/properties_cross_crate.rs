//! Cross-crate property-based tests: invariants that must hold for random
//! datasets, thresholds and seeds, tying the LSH substrate, the rank
//! permutation and the fair samplers together.

use fairnn_core::{
    DistanceAtMost, ExactSampler, FairNnis, FairNns, Nearness, NeighborSampler, RankPermutation,
    SimilarityAtLeast,
};
use fairnn_lsh::{LshIndex, LshParams, MinHash, OneBitMinHash, ParamsBuilder};
use fairnn_space::{Dataset, DenseVector, Euclidean, Jaccard, PointId, SparseSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_dataset() -> impl Strategy<Value = Dataset<SparseSet>> {
    // Random small datasets: a handful of clusters with shared prefixes plus
    // noise items, so neighbourhoods of various sizes exist.
    proptest::collection::vec(
        (0u32..6, proptest::collection::vec(0u32..400, 3..25)),
        8..40,
    )
    .prop_map(|specs| {
        let sets = specs
            .into_iter()
            .map(|(cluster, extra)| {
                let mut items: Vec<u32> = (cluster * 1000..cluster * 1000 + 12).collect();
                items.extend(extra);
                SparseSet::from_items(items)
            })
            .collect();
        Dataset::new(sets)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rank_permutation_is_always_a_bijection(n in 1usize..300, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let perm = RankPermutation::random(n, &mut rng);
        prop_assert!(perm.is_consistent());
        let ranks: std::collections::HashSet<u32> = (0..n as u32).map(|p| perm.rank(PointId(p))).collect();
        prop_assert_eq!(ranks.len(), n);
    }

    #[test]
    fn lsh_index_query_with_itself_always_collides(data in arb_dataset(), seed in 0u64..500) {
        let params = LshParams::explicit(2, 4, 0.5, 0.1);
        let mut rng = StdRng::seed_from_u64(seed);
        let index = LshIndex::build(&MinHash, params, data.points(), &mut rng);
        for (id, p) in data.iter() {
            prop_assert!(index.colliding_ids(p).contains(&id));
        }
    }

    #[test]
    fn fair_samplers_never_return_points_outside_the_neighborhood(
        data in arb_dataset(),
        seed in 0u64..500,
        r in 0.2f64..0.6,
    ) {
        let near = SimilarityAtLeast::new(Jaccard, r);
        let params = ParamsBuilder::new(data.len(), r, 0.05)
            .with_recall(0.9)
            .empirical(&OneBitMinHash);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nns = FairNns::build(&OneBitMinHash, params, &data, near, &mut rng);
        let mut nnis = FairNnis::build(&OneBitMinHash, params, &data, near, &mut rng);
        let exact = ExactSampler::new(&data, near);
        for qi in [0usize, data.len() / 2, data.len() - 1] {
            let query = data.point(PointId::from_index(qi)).clone();
            let neighborhood = exact.neighborhood(&query);
            for _ in 0..5 {
                if let Some(id) = nns.sample(&query, &mut rng) {
                    prop_assert!(neighborhood.contains(&id));
                }
                if let Some(id) = nnis.sample(&query, &mut rng) {
                    prop_assert!(neighborhood.contains(&id));
                }
            }
            // The query point itself is always in its own neighbourhood, so
            // a sampler must never answer ⊥ for it (self-similarity is 1).
            prop_assert!(nnis.sample(&query, &mut rng).is_some());
        }
    }

    #[test]
    fn set_prefilter_is_admissible(
        a_items in proptest::collection::vec(0u32..400, 1..40),
        b_items in proptest::collection::vec(0u32..400, 1..40),
        threshold in 0.05f64..0.95,
    ) {
        // The quantized candidate screen may only reject pairs the exact
        // predicate also rejects (prefilter-pass ⊇ exact-pass) — that
        // admissibility is what keeps sampling bit-identical with the
        // screen enabled.
        let near = SimilarityAtLeast::new(Jaccard, threshold);
        let a = SparseSet::from_items(a_items);
        let b = SparseSet::from_items(b_items);
        let ra = near.screen_row(&a).expect("Jaccard has a screen");
        let rb = near.screen_row(&b).expect("Jaccard has a screen");
        if near.is_near(&a, &b) {
            prop_assert!(near.may_be_near(&ra, &rb), "prefilter rejected a true accept");
        }
    }

    #[test]
    fn vector_prefilter_is_admissible(
        coords in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..12),
        radius in 0.1f64..60.0,
    ) {
        // Same property for the 8-bit quantized Euclidean screen, over
        // same-dimension vector pairs (each generated pair shares an axis).
        let (a, b): (Vec<f64>, Vec<f64>) = coords.into_iter().unzip();
        let near = DistanceAtMost::new(Euclidean, radius);
        let a = DenseVector::new(a);
        let b = DenseVector::new(b);
        let ra = near.screen_row(&a).expect("Euclidean has a screen");
        let rb = near.screen_row(&b).expect("Euclidean has a screen");
        if near.is_near(&a, &b) {
            prop_assert!(near.may_be_near(&ra, &rb), "prefilter rejected a true accept");
        }
    }

    #[test]
    fn without_replacement_is_a_subset_of_the_neighborhood_without_duplicates(
        data in arb_dataset(),
        seed in 0u64..500,
        k in 1usize..12,
    ) {
        let r = 0.3;
        let near = SimilarityAtLeast::new(Jaccard, r);
        let params = ParamsBuilder::new(data.len(), r, 0.05)
            .with_recall(0.9)
            .empirical(&OneBitMinHash);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nns = FairNns::build(&OneBitMinHash, params, &data, near, &mut rng);
        let exact = ExactSampler::new(&data, near);
        let query = data.point(PointId(0)).clone();
        let neighborhood = exact.neighborhood(&query);
        let sample = nns.sample_without_replacement(&query, k);
        prop_assert!(sample.len() <= k.min(neighborhood.len()));
        let distinct: std::collections::HashSet<_> = sample.iter().collect();
        prop_assert_eq!(distinct.len(), sample.len());
        for id in &sample {
            prop_assert!(neighborhood.contains(id));
        }
    }
}
