//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in `tests/tests/*.rs`; this small library holds the
//! fixtures they share (a common scaled-down workload and the LSH parameter
//! recipe of the paper's evaluation).

use fairnn_data::setdata::SetDataConfig;
use fairnn_lsh::{LshParams, OneBitMinHash, ParamsBuilder};
use fairnn_space::{Dataset, SparseSet};

/// A compact clustered set-dataset used by most integration tests: the same
/// qualitative structure as the paper's datasets (interest clusters plus
/// background users) at a size where exact ground truth is cheap.
pub fn test_dataset(seed: u64) -> Dataset<SparseSet> {
    SetDataConfig {
        num_users: 220,
        universe_size: 1500,
        mean_set_size: 24.0,
        std_set_size: 4.0,
        popularity_exponent: 1.0,
        num_clusters: 4,
        clustered_fraction: 0.8,
        core_fraction: 0.75,
        core_pool_factor: 1.2,
    }
    .generate(seed)
}

/// The Section 6 parameter recipe (1-bit MinHash, far threshold 0.1,
/// ≥ 99 % recall at `r`).
pub fn test_params(n: usize, r: f64) -> LshParams {
    ParamsBuilder::new(n, r, 0.1).empirical(&OneBitMinHash)
}

/// The clustered fixture behind the seed-pinned golden tests: one 10-member
/// cluster and 20 isolated points (the same shape the unit suites use).
/// Shared between `golden_samples.rs` (pins the behaviour of the live
/// structures) and `snapshot_roundtrip.rs` (pins that structures restored
/// from disk reproduce the very same sequences).
pub fn golden_dataset() -> Dataset<SparseSet> {
    let mut sets = Vec::new();
    for j in 0..10u32 {
        let mut items: Vec<u32> = (0..25).collect();
        items.push(100 + j);
        items.push(200 + j);
        sets.push(SparseSet::from_items(items));
    }
    for j in 0..20u32 {
        sets.push(SparseSet::from_items(
            (1000 + j * 40..1000 + j * 40 + 15).collect(),
        ));
    }
    Dataset::new(sets)
}

/// The LSH parameters the golden captures were taken with (full MinHash,
/// `r = 0.5`, far threshold 0.05).
pub fn golden_params(n: usize) -> LshParams {
    ParamsBuilder::new(n, 0.5, 0.05).empirical(&fairnn_lsh::MinHash)
}

/// Flattens optional ids for comparison against the golden constants
/// (`-1` encodes the paper's `⊥`).
pub fn golden_ids(v: &[Option<fairnn_space::PointId>]) -> Vec<i64> {
    v.iter()
        .map(|id| id.map_or(-1, |p| i64::from(p.0)))
        .collect()
}

/// Expected output of the pinned `FairNns` query sequence (seeds 1/5).
pub const GOLDEN_FAIR_NNS: [i64; 10] = [0, 0, 0, 10, 13, 16, 19, 22, 25, 28];
/// Expected output of the pinned `FairNnis` query sequence (seeds 2/99).
pub const GOLDEN_FAIR_NNIS: [i64; 20] =
    [7, 3, 8, 4, 8, 7, 0, 5, 2, 0, 6, 2, 6, 6, 7, 5, 7, 4, 4, 2];
/// Expected output of the pinned `RankSwapSampler` sequence (seeds 3/7).
pub const GOLDEN_RANK_SWAP: [i64; 20] =
    [3, 3, 6, 1, 9, 3, 7, 8, 2, 9, 1, 9, 1, 9, 8, 6, 9, 3, 9, 6];
/// Expected output of the pinned 3-shard `ShardedIndex` sequence (seeds 17/11).
pub const GOLDEN_SHARDED: [i64; 20] = [9, 9, 6, 8, 4, 2, 9, 5, 6, 7, 3, 3, 2, 2, 2, 4, 5, 2, 1, 0];
/// Expected first batch of the pinned 4-shard `QueryEngine` (seed 23).
pub const GOLDEN_ENGINE_FIRST: [i64; 10] = [1, 8, 9, 4, 8, 9, 3, 3, 8, 2];
/// Expected second batch (rides the rank-swap cache).
pub const GOLDEN_ENGINE_SECOND: [i64; 10] = [5, 9, 7, 5, 7, 4, 9, 8, 4, 3];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = test_dataset(1);
        let b = test_dataset(1);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.points()[0], b.points()[0]);
        let p = test_params(a.len(), 0.3);
        assert!(p.k >= 1 && p.l >= 1);
    }
}
