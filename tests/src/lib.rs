//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in `tests/tests/*.rs`; this small library holds the
//! fixtures they share (a common scaled-down workload and the LSH parameter
//! recipe of the paper's evaluation).

use fairnn_data::setdata::SetDataConfig;
use fairnn_lsh::{LshParams, OneBitMinHash, ParamsBuilder};
use fairnn_space::{Dataset, SparseSet};

/// A compact clustered set-dataset used by most integration tests: the same
/// qualitative structure as the paper's datasets (interest clusters plus
/// background users) at a size where exact ground truth is cheap.
pub fn test_dataset(seed: u64) -> Dataset<SparseSet> {
    SetDataConfig {
        num_users: 220,
        universe_size: 1500,
        mean_set_size: 24.0,
        std_set_size: 4.0,
        popularity_exponent: 1.0,
        num_clusters: 4,
        clustered_fraction: 0.8,
        core_fraction: 0.75,
        core_pool_factor: 1.2,
    }
    .generate(seed)
}

/// The Section 6 parameter recipe (1-bit MinHash, far threshold 0.1,
/// ≥ 99 % recall at `r`).
pub fn test_params(n: usize, r: f64) -> LshParams {
    ParamsBuilder::new(n, r, 0.1).empirical(&OneBitMinHash)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = test_dataset(1);
        let b = test_dataset(1);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.points()[0], b.points()[0]);
        let p = test_params(a.len(), 0.3);
        assert!(p.k >= 1 && p.l >= 1);
    }
}
